//! **Figure 5** — probability that an *uninterested* process receives a
//! multicast event, as a function of the fraction of interested processes,
//! for the same configuration as Figure 4.
//!
//! This is the metric that distinguishes a multicast from a broadcast: in a
//! flooding gossip broadcast this probability is close to 1 regardless of
//! `p_d`; pmcast keeps it low because only (delegates of) interested
//! subtrees are infected.

use serde::{Deserialize, Serialize};

use crate::report::FigureRow;
use crate::runner::{run_experiment_parallel, Protocol};

use super::Profile;

/// One data point of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpuriousRow {
    /// Fraction of interested processes (`p_d`).
    pub matching_rate: f64,
    /// Probability that an uninterested process receives the event under
    /// pmcast.
    pub spurious_pmcast: f64,
    /// The same probability under the flooding broadcast baseline (for
    /// contrast; the paper discusses it qualitatively in Section 1).
    pub spurious_flooding: f64,
}

impl FigureRow for SpuriousRow {
    fn headers() -> Vec<&'static str> {
        vec!["matching_rate", "spurious_pmcast", "spurious_flooding"]
    }
    fn values(&self) -> Vec<f64> {
        vec![self.matching_rate, self.spurious_pmcast, self.spurious_flooding]
    }
}

/// Runs the Figure 5 sweep for the given profile.
pub fn run(profile: Profile) -> Vec<SpuriousRow> {
    let base = profile.reliability_base();
    profile
        .matching_rates()
        .into_iter()
        .map(|matching_rate| {
            let pmcast = run_experiment_parallel(&base.clone().with_matching_rate(matching_rate));
            let flooding = run_experiment_parallel(
                &base
                    .clone()
                    .with_matching_rate(matching_rate)
                    .with_protocol_kind(Protocol::FloodBroadcast),
            );
            SpuriousRow {
                matching_rate,
                spurious_pmcast: pmcast.spurious_mean,
                spurious_flooding: flooding.spurious_mean,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmcast_touches_far_fewer_uninterested_processes_than_flooding() {
        let rows = run(Profile::Quick);
        assert_eq!(rows.len(), Profile::Quick.matching_rates().len());
        for row in &rows {
            // pmcast's spurious reception stays well below flooding.  The
            // paper's Figure 5 peaks around 0.12 at a = 22 (delegate density
            // R/a = 3/22); the quick profile runs at a = 6 where half of
            // every subgroup are delegates, so its structural ceiling is
            // near R/a = 0.5 — hence the looser bound here.
            assert!(
                row.spurious_pmcast < 0.6,
                "pmcast spurious reception {} too high at p_d = {}",
                row.spurious_pmcast,
                row.matching_rate
            );
            assert!(
                row.spurious_flooding > row.spurious_pmcast,
                "flooding should reach more uninterested processes (p_d = {})",
                row.matching_rate
            );
        }
        // Flooding is essentially a broadcast.
        assert!(rows.iter().any(|r| r.spurious_flooding > 0.9));
    }
}
