//! **Figure 6** — delivery probability as the group grows: the subgroup
//! size `a` is swept (so `n = a³` grows cubically) with `d = 3`, `R = 4`,
//! `F = 3`, for matching rates 0.5 and 0.2.
//!
//! The paper's claim is that the delivery probability stays above ≈ 0.9
//! across the sweep, slightly lower for the smaller matching rate.

use serde::{Deserialize, Serialize};

use crate::report::FigureRow;
use crate::runner::run_experiment_parallel;

use super::Profile;

/// One data point of Figure 6 (one subgroup size, both matching rates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalabilityRow {
    /// Subgroup size `a` (the x-axis); the group has `a³` processes.
    pub arity: f64,
    /// Total group size `n = a³`.
    pub group_size: f64,
    /// Delivery probability at matching rate 0.5.
    pub delivery_rate_05: f64,
    /// Delivery probability at matching rate 0.2.
    pub delivery_rate_02: f64,
}

impl FigureRow for ScalabilityRow {
    fn headers() -> Vec<&'static str> {
        vec!["arity", "group_size", "delivery_rate_05", "delivery_rate_02"]
    }
    fn values(&self) -> Vec<f64> {
        vec![
            self.arity,
            self.group_size,
            self.delivery_rate_05,
            self.delivery_rate_02,
        ]
    }
}

/// Runs the Figure 6 sweep for the given profile.
pub fn run(profile: Profile) -> Vec<ScalabilityRow> {
    profile
        .arities()
        .into_iter()
        .map(|arity| {
            let base = profile.scalability_base(arity);
            let at_half = run_experiment_parallel(&base.clone().with_matching_rate(0.5));
            let at_fifth = run_experiment_parallel(&base.clone().with_matching_rate(0.2));
            ScalabilityRow {
                arity: arity as f64,
                group_size: base.group_size() as f64,
                delivery_rate_05: at_half.delivery_mean,
                delivery_rate_02: at_fifth.delivery_mean,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_stays_high_as_the_group_grows() {
        let rows = run(Profile::Quick);
        assert_eq!(rows.len(), Profile::Quick.arities().len());
        for row in &rows {
            assert!(
                row.delivery_rate_05 > 0.85,
                "a = {}: delivery at rate 0.5 is only {}",
                row.arity,
                row.delivery_rate_05
            );
            assert!(
                row.delivery_rate_02 > 0.6,
                "a = {}: delivery at rate 0.2 is only {}",
                row.arity,
                row.delivery_rate_02
            );
        }
        // Group size really grows cubically along the sweep.
        assert!(rows.last().unwrap().group_size > rows.first().unwrap().group_size);
    }
}
