//! One module per evaluation figure / claim of the paper.
//!
//! Every experiment comes in two profiles:
//!
//! * [`Profile::Quick`] — a small group (a = 6, d = 3, n = 216) and few
//!   trials, fast enough for unit tests and smoke benchmarks;
//! * [`Profile::Paper`] — the configuration of the paper's evaluation
//!   (a = 22, d = 3, n = 10 648 for the reliability figures), used by the
//!   `figures` binary and the full benchmark harness.
//!
//! Each module exposes a `run(profile)` function returning typed rows that
//! implement [`crate::report::FigureRow`], so results can be printed, saved
//! as CSV and compared against the paper's curves (see `EXPERIMENTS.md`).

pub mod baselines;
pub mod reliability;
pub mod rounds;
pub mod scalability;
pub mod spurious;
pub mod tuning;
pub mod views;

use serde::{Deserialize, Serialize};

use crate::runner::ExperimentConfig;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Profile {
    /// Small group, few trials: fast, used by tests and smoke benches.
    Quick,
    /// Paper-scale group and trial counts (minutes of runtime).
    Paper,
}

impl Profile {
    /// Base configuration for the reliability-style experiments
    /// (Figures 4, 5 and 7).
    pub fn reliability_base(self) -> ExperimentConfig {
        match self {
            Profile::Quick => ExperimentConfig::quick().with_trials(3),
            Profile::Paper => ExperimentConfig::paper_reliability().with_trials(5),
        }
    }

    /// Base configuration for the scalability experiment (Figure 6); the
    /// arity is set per data point.
    pub fn scalability_base(self, arity: u32) -> ExperimentConfig {
        match self {
            Profile::Quick => ExperimentConfig::quick()
                .with_arity(arity)
                .with_trials(3)
                .with_protocol(pmcast_core::PmcastConfig::paper_scalability()),
            Profile::Paper => ExperimentConfig::paper_scalability(arity).with_trials(5),
        }
    }

    /// The matching rates swept by the reliability experiments.
    pub fn matching_rates(self) -> Vec<f64> {
        match self {
            Profile::Quick => vec![0.1, 0.3, 0.5, 0.8],
            Profile::Paper => vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
        }
    }

    /// The subgroup sizes swept by the scalability experiment.
    pub fn arities(self) -> Vec<u32> {
        match self {
            Profile::Quick => vec![4, 6, 8],
            Profile::Paper => vec![10, 15, 20, 25, 30, 35, 40],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_produce_consistent_configs() {
        let quick = Profile::Quick.reliability_base();
        assert_eq!(quick.group_size(), 216);
        let paper = Profile::Paper.reliability_base();
        assert_eq!(paper.group_size(), 10_648);
        assert_eq!(paper.protocol.redundancy, 3);
        assert_eq!(paper.protocol.fanout, 2);

        let scal = Profile::Paper.scalability_base(25);
        assert_eq!(scal.arity, 25);
        assert_eq!(scal.protocol.redundancy, 4);
        assert_eq!(scal.protocol.fanout, 3);
        let scal_quick = Profile::Quick.scalability_base(4);
        assert_eq!(scal_quick.group_size(), 64);
        assert_eq!(scal_quick.protocol.fanout, 3);

        assert!(Profile::Paper.matching_rates().len() > Profile::Quick.matching_rates().len());
        assert!(Profile::Paper.arities().len() > Profile::Quick.arities().len());
    }
}
