//! **Membership scalability** (Equations 2 and 12) — the per-process view
//! size of pmcast compared with flat membership, both analytically and
//! measured on concrete [`pmcast_membership::ViewTable`]s.

use serde::{Deserialize, Serialize};

use pmcast_addr::AddressSpace;
use pmcast_interest::Filter;
use pmcast_membership::{GroupTree, TreeTopology};

use crate::report::FigureRow;

use super::Profile;

/// One configuration's view-size comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViewSizeRow {
    /// Subgroups per level (`a`).
    pub arity: f64,
    /// Tree depth (`d`).
    pub depth: f64,
    /// Group size `n = a^d`.
    pub group_size: f64,
    /// Analytical per-process view size (Equation 2 / 12).
    pub analytical_view_size: f64,
    /// View size measured on a concrete view table (0 when the group is too
    /// large to materialise in the quick profile).
    pub measured_view_size: f64,
    /// `n / analytical_view_size`.
    pub reduction_factor: f64,
}

impl FigureRow for ViewSizeRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "arity",
            "depth",
            "group_size",
            "analytical_view_size",
            "measured_view_size",
            "reduction_factor",
        ]
    }
    fn values(&self) -> Vec<f64> {
        vec![
            self.arity,
            self.depth,
            self.group_size,
            self.analytical_view_size,
            self.measured_view_size,
            self.reduction_factor,
        ]
    }
}

/// Largest group that is explicitly materialised to cross-check the formula.
const MEASURE_LIMIT: usize = 4_096;

/// Runs the view-size comparison for the given profile.
pub fn run(profile: Profile) -> Vec<ViewSizeRow> {
    let redundancy = 3;
    let configurations: Vec<(u32, usize)> = match profile {
        Profile::Quick => vec![(4, 2), (4, 3), (6, 3), (8, 3)],
        Profile::Paper => vec![(10, 3), (15, 3), (22, 3), (30, 3), (40, 3), (22, 4)],
    };
    configurations
        .into_iter()
        .map(|(arity, depth)| {
            let report = pmcast_analysis::views::view_size_report(arity, depth, redundancy);
            let measured = if report.group_size <= MEASURE_LIMIT {
                let space = AddressSpace::regular(depth, arity).expect("valid shape");
                let tree = GroupTree::fully_populated(space, Filter::match_all());
                let owner = tree.members()[0].clone();
                tree.view_table_for(&owner, redundancy)
                    .expect("owner is a member")
                    .knowledge_size() as f64
            } else {
                0.0
            };
            ViewSizeRow {
                arity: arity as f64,
                depth: depth as f64,
                group_size: report.group_size as f64,
                analytical_view_size: report.tree_view_size as f64,
                measured_view_size: measured,
                reduction_factor: report.reduction_factor,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_views_match_equation_2() {
        let rows = run(Profile::Quick);
        assert!(!rows.is_empty());
        for row in &rows {
            if row.measured_view_size > 0.0 {
                assert!(
                    (row.measured_view_size - row.analytical_view_size).abs() < 1e-9,
                    "a = {}, d = {}: measured {} vs analytical {}",
                    row.arity,
                    row.depth,
                    row.measured_view_size,
                    row.analytical_view_size
                );
            }
            // The tree always knows no more processes than flat membership.
            assert!(row.analytical_view_size <= row.group_size);
        }
        // For the largest quick configuration the reduction is substantial.
        assert!(rows.last().unwrap().reduction_factor > 5.0);
    }
}
