//! **Figure 7** — the effect of the Section 5.3 tuning (audience inflation
//! with threshold `h`) on the delivery probability, compared with the
//! untuned algorithm, over the same configuration as Figure 4.
//!
//! The tuned curve should dominate the untuned one at small matching rates
//! and converge to it for comfortable rates — at the price of a higher
//! reception rate at uninterested processes, which the rows also record.

use serde::{Deserialize, Serialize};

use crate::report::FigureRow;
use crate::runner::run_experiment_parallel;

use super::Profile;

/// The tuning threshold `h` used by the tuned runs.
pub const DEFAULT_THRESHOLD: usize = 12;

/// One data point of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningRow {
    /// Fraction of interested processes (`p_d`).
    pub matching_rate: f64,
    /// Delivery probability of the original (untuned) algorithm.
    pub delivery_original: f64,
    /// Delivery probability with the audience-inflation tuning.
    pub delivery_tuned: f64,
    /// Spurious reception of the original algorithm (for the compromise
    /// discussion of Section 5.3).
    pub spurious_original: f64,
    /// Spurious reception with tuning.
    pub spurious_tuned: f64,
}

impl FigureRow for TuningRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "matching_rate",
            "delivery_original",
            "delivery_tuned",
            "spurious_original",
            "spurious_tuned",
        ]
    }
    fn values(&self) -> Vec<f64> {
        vec![
            self.matching_rate,
            self.delivery_original,
            self.delivery_tuned,
            self.spurious_original,
            self.spurious_tuned,
        ]
    }
}

/// Runs the Figure 7 sweep for the given profile and threshold.
pub fn run_with_threshold(profile: Profile, threshold: usize) -> Vec<TuningRow> {
    let base = profile.reliability_base();
    profile
        .matching_rates()
        .into_iter()
        .map(|matching_rate| {
            let original = run_experiment_parallel(&base.clone().with_matching_rate(matching_rate));
            let tuned_config = base
                .clone()
                .with_matching_rate(matching_rate)
                .with_protocol(base.protocol.clone().with_tuning(threshold));
            let tuned = run_experiment_parallel(&tuned_config);
            TuningRow {
                matching_rate,
                delivery_original: original.delivery_mean,
                delivery_tuned: tuned.delivery_mean,
                spurious_original: original.spurious_mean,
                spurious_tuned: tuned.spurious_mean,
            }
        })
        .collect()
}

/// Runs the Figure 7 sweep with the default threshold.
pub fn run(profile: Profile) -> Vec<TuningRow> {
    run_with_threshold(profile, DEFAULT_THRESHOLD)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_helps_small_matching_rates() {
        let rows = run(Profile::Quick);
        assert_eq!(rows.len(), Profile::Quick.matching_rates().len());
        // At the smallest swept rate the tuned variant must not be worse
        // (and is usually strictly better).
        let smallest = &rows[0];
        assert!(
            smallest.delivery_tuned + 0.05 >= smallest.delivery_original,
            "tuned {} vs original {} at p_d = {}",
            smallest.delivery_tuned,
            smallest.delivery_original,
            smallest.matching_rate
        );
        // At comfortable rates both variants deliver reliably.
        let largest = rows.last().unwrap();
        assert!(largest.delivery_original > 0.9);
        assert!(largest.delivery_tuned > 0.9);
        // The compromise: tuning never reduces spurious reception.
        for row in &rows {
            assert!(row.spurious_tuned + 1e-9 >= row.spurious_original - 0.05);
        }
    }
}
