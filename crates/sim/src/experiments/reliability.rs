//! **Figure 4** — probability that an *interested* process delivers a
//! multicast event, as a function of the fraction of interested processes
//! (`p_d`), for `n ≈ 10 000` (a = 22, d = 3), `R = 3`, `F = 2`.
//!
//! Each row carries both the Monte-Carlo result of the full protocol
//! simulation and the prediction of the analytical model of Section 4, so
//! that the two halves of the reproduction can be cross-checked.

use serde::{Deserialize, Serialize};

use pmcast_analysis::{tree::TreeModel, GroupParams};

use crate::report::FigureRow;
use crate::runner::{run_experiment_parallel, ExperimentConfig};

use super::Profile;

/// One data point of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityRow {
    /// Fraction of interested processes (`p_d`, the x-axis).
    pub matching_rate: f64,
    /// Simulated delivery probability for interested processes (y-axis).
    pub delivery_simulated: f64,
    /// Sample standard deviation across trials.
    pub delivery_std: f64,
    /// Analytical prediction (Equation 18 based reliability degree).
    pub delivery_analytical: f64,
    /// Mean rounds to quiescence in the simulation.
    pub rounds: f64,
}

impl FigureRow for ReliabilityRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "matching_rate",
            "delivery_simulated",
            "delivery_std",
            "delivery_analytical",
            "rounds",
        ]
    }
    fn values(&self) -> Vec<f64> {
        vec![
            self.matching_rate,
            self.delivery_simulated,
            self.delivery_std,
            self.delivery_analytical,
            self.rounds,
        ]
    }
}

fn analytical_model(config: &ExperimentConfig) -> TreeModel {
    TreeModel::new(
        GroupParams {
            arity: config.arity,
            depth: config.depth,
            redundancy: config.protocol.redundancy,
            fanout: config.protocol.fanout,
        },
        config.protocol.env,
    )
}

/// Runs the Figure 4 sweep for the given profile.
pub fn run(profile: Profile) -> Vec<ReliabilityRow> {
    let base = profile.reliability_base();
    let model = analytical_model(&base);
    profile
        .matching_rates()
        .into_iter()
        .map(|matching_rate| {
            let config = base.clone().with_matching_rate(matching_rate);
            let outcome = run_experiment_parallel(&config);
            let analytical = model.reliability(matching_rate);
            ReliabilityRow {
                matching_rate,
                delivery_simulated: outcome.delivery_mean,
                delivery_std: outcome.delivery_std,
                delivery_analytical: analytical.reliability_degree,
                rounds: outcome.rounds_mean,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_reproduces_the_figure_4_shape() {
        let rows = run(Profile::Quick);
        assert_eq!(rows.len(), Profile::Quick.matching_rates().len());
        // Delivery is high for comfortable matching rates (the paper's
        // headline claim) …
        let at_half = rows.iter().find(|r| (r.matching_rate - 0.5).abs() < 1e-9).unwrap();
        assert!(
            at_half.delivery_simulated > 0.85,
            "simulated delivery at p_d = 0.5 is only {}",
            at_half.delivery_simulated
        );
        let at_high = rows.last().unwrap();
        assert!(at_high.delivery_simulated > 0.9);
        // … and the analytical model agrees with the simulation within a
        // coarse tolerance at the comfortable rates.
        assert!((at_half.delivery_simulated - at_half.delivery_analytical).abs() < 0.2);
        // Rows are ordered by matching rate.
        for pair in rows.windows(2) {
            assert!(pair[0].matching_rate < pair[1].matching_rate);
        }
    }

    #[test]
    fn rows_render_as_csv() {
        let rows = vec![ReliabilityRow {
            matching_rate: 0.5,
            delivery_simulated: 0.98,
            delivery_std: 0.01,
            delivery_analytical: 0.97,
            rounds: 20.0,
        }];
        let csv = crate::report::to_csv(&rows);
        assert!(csv.starts_with("matching_rate,"));
        assert!(csv.contains("0.980000"));
    }
}
