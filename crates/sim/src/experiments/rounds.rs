//! **Round-count validation** (Equations 3, 11 and 13) — the number of
//! rounds the simulated protocol takes to go quiescent, compared with the
//! analytical budget `T_tot = Σ_i T_f(m_i·p_i, F·p_i)`.
//!
//! The paper notes (Section 4.3) that thanks to the delegates already being
//! infected when a depth starts, the tree costs roughly as many rounds as a
//! flat group of the same size; the rows therefore also carry the flat
//! estimate `T_f(n, F)` for comparison.

use serde::{Deserialize, Serialize};

use pmcast_analysis::{pittel, tree::TreeModel, GroupParams};

use crate::report::FigureRow;
use crate::runner::run_experiment_parallel;

use super::Profile;

/// One data point of the round-count validation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundsRow {
    /// Fraction of interested processes.
    pub matching_rate: f64,
    /// Mean simulated rounds until the whole group went quiescent.
    pub rounds_simulated: f64,
    /// Analytical per-depth budget summed over depths (Equation 13).
    pub rounds_budget_tree: f64,
    /// Pittel's flat-group estimate `T_f(n·p_d, F·p_d)` (Equation 11).
    pub rounds_flat_estimate: f64,
}

impl FigureRow for RoundsRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "matching_rate",
            "rounds_simulated",
            "rounds_budget_tree",
            "rounds_flat_estimate",
        ]
    }
    fn values(&self) -> Vec<f64> {
        vec![
            self.matching_rate,
            self.rounds_simulated,
            self.rounds_budget_tree,
            self.rounds_flat_estimate,
        ]
    }
}

/// Runs the round-count validation for the given profile.
pub fn run(profile: Profile) -> Vec<RoundsRow> {
    let base = profile.reliability_base();
    let model = TreeModel::new(
        GroupParams {
            arity: base.arity,
            depth: base.depth,
            redundancy: base.protocol.redundancy,
            fanout: base.protocol.fanout,
        },
        base.protocol.env,
    );
    profile
        .matching_rates()
        .into_iter()
        .map(|matching_rate| {
            let outcome = run_experiment_parallel(&base.clone().with_matching_rate(matching_rate));
            let n = base.group_size() as f64;
            let flat = pittel::rounds_estimate_faulty(
                n * matching_rate,
                base.protocol.fanout as f64 * matching_rate,
                &base.protocol.env,
            );
            RoundsRow {
                matching_rate,
                rounds_simulated: outcome.rounds_mean,
                rounds_budget_tree: model.total_rounds(matching_rate) as f64,
                rounds_flat_estimate: flat,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_rounds_stay_within_the_analytical_budget() {
        let rows = run(Profile::Quick);
        assert_eq!(rows.len(), Profile::Quick.matching_rates().len());
        for row in &rows {
            assert!(row.rounds_simulated > 0.0);
            assert!(row.rounds_budget_tree > 0.0);
            // The protocol bounds gossiping by the analytical budget, so the
            // simulation cannot exceed it by more than the quiescence slack
            // (promotion happens one round after the budget expires at each
            // depth, plus one trailing delivery round).
            let slack = 2.0 * 3.0 + 2.0;
            assert!(
                row.rounds_simulated <= row.rounds_budget_tree + slack,
                "p_d = {}: simulated {} vs budget {}",
                row.matching_rate,
                row.rounds_simulated,
                row.rounds_budget_tree
            );
            // Rounds grow logarithmically, not linearly, with the audience.
            assert!(row.rounds_budget_tree < 80.0);
            assert!(row.rounds_flat_estimate.is_finite());
        }
    }
}
