//! Rendering of experiment results as CSV files and ASCII tables.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A row of an experiment's output table.
///
/// Every experiment module defines its own row struct; implementing this
/// trait is all that is needed to render it as CSV or an ASCII table and to
/// write it under `target/figures/`.
pub trait FigureRow {
    /// Column headers, in order.
    fn headers() -> Vec<&'static str>;
    /// The numeric values of this row, in header order.
    fn values(&self) -> Vec<f64>;
}

/// Renders rows as CSV with a header line.
pub fn to_csv<R: FigureRow>(rows: &[R]) -> String {
    let mut out = String::new();
    out.push_str(&R::headers().join(","));
    out.push('\n');
    for row in rows {
        let values: Vec<String> = row.values().iter().map(|v| format!("{v:.6}")).collect();
        out.push_str(&values.join(","));
        out.push('\n');
    }
    out
}

/// Renders rows as a fixed-width ASCII table (what the `figures` binary
/// prints).
pub fn to_ascii_table<R: FigureRow>(title: &str, rows: &[R]) -> String {
    let headers = R::headers();
    let width = 14usize;
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let header_line: Vec<String> = headers.iter().map(|h| format!("{h:>width$}")).collect();
    out.push_str(&header_line.join(" "));
    out.push('\n');
    out.push_str(&"-".repeat((width + 1) * headers.len()));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row
            .values()
            .iter()
            .map(|v| format!("{v:>width$.4}"))
            .collect();
        out.push_str(&cells.join(" "));
        out.push('\n');
    }
    out
}

/// Writes rows to `<directory>/<name>.csv`, creating the directory if
/// needed, and returns the written path.
///
/// # Errors
///
/// Propagates any I/O error from creating the directory or writing the file.
pub fn write_csv<R: FigureRow>(directory: &Path, name: &str, rows: &[R]) -> io::Result<PathBuf> {
    fs::create_dir_all(directory)?;
    let path = directory.join(format!("{name}.csv"));
    fs::write(&path, to_csv(rows))?;
    Ok(path)
}

/// The default output directory for figure data (`target/figures`).
pub fn default_output_dir() -> PathBuf {
    PathBuf::from("target").join("figures")
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        x: f64,
        y: f64,
    }

    impl FigureRow for Row {
        fn headers() -> Vec<&'static str> {
            vec!["x", "y"]
        }
        fn values(&self) -> Vec<f64> {
            vec![self.x, self.y]
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = vec![Row { x: 1.0, y: 0.5 }, Row { x: 2.0, y: 0.25 }];
        let csv = to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "x,y");
        assert!(lines[1].starts_with("1.000000,"));
        assert!(lines[2].starts_with("2.000000,"));
    }

    #[test]
    fn ascii_table_contains_title_and_values() {
        let rows = vec![Row { x: 1.0, y: 0.5 }];
        let table = to_ascii_table("Figure 4", &rows);
        assert!(table.contains("Figure 4"));
        assert!(table.contains('x'));
        assert!(table.contains("0.5000"));
    }

    #[test]
    fn write_csv_creates_the_file() {
        let dir = std::env::temp_dir().join(format!("pmcast-report-test-{}", std::process::id()));
        let rows = vec![Row { x: 3.0, y: 0.125 }];
        let path = write_csv(&dir, "sample", &rows).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.contains("3.000000"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_output_dir_is_under_target() {
        assert!(default_output_dir().starts_with("target"));
    }
}
