//! # pmcast-sim — simulation harness and figure regenerators
//!
//! This crate turns the building blocks of the other `pmcast` crates into
//! the *experiments* of the paper's evaluation (Section 5): it samples
//! workloads, runs Monte-Carlo multicast trials over the simulated network,
//! aggregates the outcomes and regenerates the data behind every figure.
//!
//! * [`scenario`] — the fluent [`scenario::Scenario`] /
//!   [`scenario::ScenarioBuilder`] API describing a trial's workload:
//!   multiple publishers, multiple events, per-round publish schedules,
//!   crash/churn schedules, loss, and the [`scenario::MembershipSpec`]
//!   membership axis (global knowledge, flat lpbcast-style partial views,
//!   or the paper's hierarchical delegate tables).
//! * [`runner`] — run one or many multicast trials for a given scenario or
//!   experiment point, optionally in parallel.  One generic simulation
//!   loop serves every protocol through
//!   [`pmcast_core::MulticastProtocol`] / [`pmcast_core::ProtocolFactory`];
//!   the [`runner::Protocol`] enum is a thin factory dispatch.
//! * [`workload`] — interest-assignment generators: i.i.d. Bernoulli
//!   (the paper's analysis model), exact-count, subtree-clustered, and a
//!   content-based stock-ticker workload exercising real filters.
//! * [`experiments`] — one module per figure/claim: Figure 4 (delivery
//!   reliability), Figure 5 (spurious reception), Figure 6 (scalability),
//!   Figure 7 (tuning), view sizes (Eq. 2/12), baseline comparison and
//!   round-count validation.
//! * [`report`] — ASCII tables and CSV output under `target/figures/`.
//!
//! The `figures` binary (`cargo run -p pmcast-sim --bin figures -- all`)
//! regenerates everything; `--paper` switches from the quick profile (small
//! group, few trials — used in tests and CI) to the full paper-scale profile
//! (`a = 22`, `d = 3`, `n = 10 648`).
//!
//! ## Performance architecture
//!
//! All experiment sweeps run their Monte-Carlo trials through
//! [`runner::run_trials_parallel`], which fans independent trials out over
//! every available core. Trial `t` derives its entire randomness stream from
//! `seed + t`, so the parallel runner is **bit-identical** to the sequential
//! [`runner::run_trials`] — same `AggregateOutcome`, any thread count, any
//! scheduling — which the test suite asserts. When adding experiments, keep
//! all randomness derived from the per-trial seed (never from state shared
//! between trials) and parallelism remains free and deterministic.
//!
//! ## Example
//!
//! ```rust
//! use pmcast_sim::runner::{ExperimentConfig, run_experiment};
//!
//! let config = ExperimentConfig::quick()
//!     .with_matching_rate(0.5)
//!     .with_trials(3);
//! let outcome = run_experiment(&config);
//! assert!(outcome.delivery_mean > 0.5);
//! assert_eq!(outcome.trials, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod prediction;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod workload;
