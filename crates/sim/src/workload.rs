//! Workload generators: who is interested in what.
//!
//! The paper's analysis and figures use the simplest possible workload —
//! every process is interested in a given event independently with
//! probability `p_d` (Section 4.1) — but the motivation is content-based
//! publish/subscribe, so this module also provides structured workloads:
//! subtree-clustered interest (events of regional relevance) and a
//! stock-ticker workload with real attribute filters in the style of the
//! paper's Figure 2.

use pmcast_addr::{Address, Prefix};
use pmcast_interest::{Event, Filter, Predicate};
use pmcast_membership::{AssignmentOracle, TreeTopology};
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples the paper's i.i.d. Bernoulli(`p_d`) interest assignment.
pub fn bernoulli_assignment<T: TreeTopology, R: Rng>(
    topology: &T,
    matching_rate: f64,
    rng: &mut R,
) -> AssignmentOracle {
    AssignmentOracle::sample(topology, matching_rate, rng)
}

/// Samples an assignment where interest is clustered inside a few depth-1
/// subtrees: `subtree_count` subtrees are picked uniformly and within them
/// every process is interested with probability `inner_rate`.  Everybody
/// else is uninterested.  This models events of "local" relevance and
/// exercises the local-interest shortcut of Section 3.2.
pub fn clustered_assignment<T: TreeTopology, R: Rng>(
    topology: &T,
    subtree_count: usize,
    inner_rate: f64,
    rng: &mut R,
) -> AssignmentOracle {
    let mut roots = topology.populated_children(&Prefix::root());
    roots.shuffle(rng);
    roots.truncate(subtree_count.max(1));
    let chosen: Vec<Prefix> = roots
        .into_iter()
        .map(|component| Prefix::root().child(component))
        .collect();
    let interested: Vec<Address> = topology
        .members()
        .into_iter()
        .filter(|address| {
            chosen.iter().any(|prefix| address.has_prefix(prefix))
                && rng.gen_bool(inner_rate.clamp(0.0, 1.0))
        })
        .collect();
    AssignmentOracle::new(interested)
}

/// The symbols of the stock-ticker workload.
pub const TICKER_SYMBOLS: [&str; 8] = [
    "ABB", "CSGN", "NESN", "NOVN", "ROG", "UBSG", "ZURN", "SWX",
];

/// Generates a content-based subscription for one process of the
/// stock-ticker workload: the subscriber follows a random subset of symbols
/// and only wants trades above a personal price threshold (and optionally
/// above a volume threshold), mirroring the attribute mix of Figure 2.
pub fn ticker_subscription<R: Rng>(rng: &mut R) -> Filter {
    let follow_count = rng.gen_range(1..=3);
    let followed: Vec<&str> = TICKER_SYMBOLS
        .choose_multiple(rng, follow_count)
        .copied()
        .collect();
    let mut filter = Filter::new().with("symbol", Predicate::one_of(followed));
    if rng.gen_bool(0.7) {
        filter.set("price", Predicate::gt(rng.gen_range(10.0..500.0)));
    }
    if rng.gen_bool(0.3) {
        filter.set("volume", Predicate::ge(rng.gen_range(100.0..10_000.0)));
    }
    filter
}

/// Generates one trade event of the stock-ticker workload.
pub fn ticker_event<R: Rng>(id: u64, rng: &mut R) -> Event {
    let symbol = *TICKER_SYMBOLS.choose(rng).expect("symbol list is non-empty");
    Event::builder(id)
        .str("symbol", symbol)
        .float("price", rng.gen_range(5.0..1_000.0))
        .int("volume", rng.gen_range(1..50_000))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcast_addr::AddressSpace;
    use pmcast_interest::Interest;
    use pmcast_membership::{ImplicitRegularTree, InterestOracle};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn topology() -> ImplicitRegularTree {
        ImplicitRegularTree::new(AddressSpace::regular(3, 6).unwrap())
    }

    #[test]
    fn bernoulli_assignment_tracks_the_rate() {
        let topology = topology();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let oracle = bernoulli_assignment(&topology, 0.3, &mut rng);
        let n = topology.member_count() as f64;
        let expected = 0.3 * n;
        let sigma = (0.3f64 * 0.7 * n).sqrt();
        assert!(
            (oracle.len() as f64 - expected).abs() < 5.0 * sigma,
            "sampled {} expected ≈ {expected}",
            oracle.len()
        );
    }

    #[test]
    fn clustered_assignment_stays_in_chosen_subtrees() {
        let topology = topology();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let oracle = clustered_assignment(&topology, 2, 0.8, &mut rng);
        assert!(!oracle.is_empty());
        // All interested processes fall into at most two depth-1 subtrees.
        let mut roots: Vec<u32> = oracle.iter().map(|a| a.components()[0]).collect();
        roots.sort_unstable();
        roots.dedup();
        assert!(roots.len() <= 2, "interest leaked into {} subtrees", roots.len());
        // Uninterested subtrees are reported as such by the oracle.
        let event = Event::new(1);
        let untouched = (0..6u32)
            .filter(|c| !roots.contains(c))
            .map(|c| Prefix::root().child(c))
            .collect::<Vec<_>>();
        for prefix in untouched {
            assert!(!oracle.subtree_interested(&prefix, &event));
        }
    }

    #[test]
    fn ticker_subscriptions_match_some_events() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let subscriptions: Vec<Filter> = (0..50).map(|_| ticker_subscription(&mut rng)).collect();
        let events: Vec<Event> = (0..50).map(|i| ticker_event(i, &mut rng)).collect();
        let mut matches = 0usize;
        for s in &subscriptions {
            for e in &events {
                if s.matches(e) {
                    matches += 1;
                }
            }
        }
        // The workload is selective but not degenerate: some but not all
        // (subscription, event) pairs match.
        assert!(matches > 0, "no subscription matched any event");
        assert!(matches < 50 * 50 / 2, "workload matches almost everything");
    }

    #[test]
    fn ticker_events_have_the_expected_attributes() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let event = ticker_event(7, &mut rng);
        assert!(event.has_attribute("symbol"));
        assert!(event.has_attribute("price"));
        assert!(event.has_attribute("volume"));
        assert_eq!(event.id().0, 7);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let topology = topology();
        let a = bernoulli_assignment(&topology, 0.4, &mut ChaCha8Rng::seed_from_u64(9));
        let b = bernoulli_assignment(&topology, 0.4, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
        let e1 = ticker_event(1, &mut ChaCha8Rng::seed_from_u64(9));
        let e2 = ticker_event(1, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(e1, e2);
    }
}
