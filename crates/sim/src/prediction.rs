//! The analysis↔simulation closed loop: map any built [`Scenario`] to the
//! prediction of the analytical model, and gate simulated results against
//! it.
//!
//! [`predict`] inspects the scenario's membership provider, churn schedules
//! and fault axes and builds the matching [`DecentralizedModel`]:
//! the model's provider shape comes from [`MembershipSpec`], the churn
//! profile from the leave/crash schedules (offsets relative to the earliest
//! publish round), `ε` from the scenario's loss probability and `τ` from
//! its initial crash fraction.  Prediction is **read-only**: it consumes no
//! randomness and never touches the scenario's seed streams, so adding a
//! predicted column to a sweep cannot perturb a single simulated bit.
//!
//! Not every scenario is inside the model's domain.  The prediction carries
//! an explicit [`ModelPrediction::in_domain`] flag, and [`DriftGate`] only
//! gates in-domain rows — see `ARCHITECTURE.md` invariant 9 for the
//! contract (what the model must track, what it may ignore, and the
//! tolerance policy per scale).  Out-of-domain scenarios are:
//!
//! * any active fault axis (link delay, partitions, subtree loss,
//!   stragglers) — the analysis assumes a uniform-loss network;
//! * join schedules (flash crowds) — the model only shrinks populations;
//! * flat partial views below `n = 10⁴` — the fixed-sample percolation
//!   model is validated at paper scale, while small dense groups are
//!   dominated by lpbcast's per-round view re-gossip (the
//!   [`ModelPrediction::tolerance_scale`] doubles the budget for in-domain
//!   flat rows for the same reason);
//! * matching rates below `1/a` — the expected interested audience of a
//!   leaf view drops under one entity, the regime where Equation 15
//!   degenerates and the model reads "fizzle" while the protocol's
//!   interest-filtered targeting (and the Section 5.3 tuning) keeps
//!   delivering.

use pmcast_analysis::churn::ChurnProfile;
use pmcast_analysis::decentralized::{DecentralizedModel, DecentralizedReport, ProviderShape};
use pmcast_analysis::{EnvParams, GroupParams};
use serde::{Deserialize, Serialize};

use crate::scenario::{MembershipSpec, Scenario};

/// Smallest group size at which flat partial-view rows are inside the
/// model's trust region (see the module docs).
pub const PARTIAL_VIEW_DOMAIN_FLOOR: usize = 10_000;

/// The analytical prediction for one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelPrediction {
    /// Predicted reliability degree (delivered fraction of the initially
    /// interested population).
    pub reliability: f64,
    /// Predicted total round budget (sum of per-depth Pittel budgets).
    pub rounds: u32,
    /// Membership entries per process under the scenario's provider.
    pub view_entries: usize,
    /// Whether the scenario lies inside the model's validated domain; only
    /// in-domain predictions are gated by [`DriftGate`].
    pub in_domain: bool,
    /// Multiplier on the drift tolerance for this row (1.0 normally, 2.0
    /// for flat partial-view rows — see the module docs).
    pub tolerance_scale: f64,
}

/// Builds the churn profile of a scenario: leave and crash schedules
/// grouped by round offset after the earliest publish, as fractions of the
/// initial population.
fn churn_profile(scenario: &Scenario) -> ChurnProfile {
    let initial = scenario.group_size().max(1) as f64;
    let publish_round = scenario
        .publications
        .iter()
        .map(|publication| publication.round)
        .min()
        .unwrap_or(0);
    let mut by_offset: Vec<(u32, f64)> = Vec::new();
    let mut add = |round: u64| {
        let offset = round.saturating_sub(publish_round).min(u32::MAX as u64) as u32;
        match by_offset.iter_mut().find(|(at, _)| *at == offset) {
            Some((_, fraction)) => *fraction += 1.0 / initial,
            None => by_offset.push((offset, 1.0 / initial)),
        }
    };
    for &(round, _) in &scenario.leave_schedule {
        add(round);
    }
    for &(round, _) in &scenario.crash_schedule {
        add(round);
    }
    ChurnProfile::from_departures(by_offset)
}

/// Maps a scenario onto the analytical model and predicts its outcome.
///
/// See the module docs for the mapping and the domain rules.  The
/// prediction is deterministic and side-effect free.
pub fn predict(scenario: &Scenario) -> ModelPrediction {
    let group = GroupParams {
        arity: scenario.arity,
        depth: scenario.depth,
        redundancy: scenario.protocol.redundancy,
        fanout: scenario.protocol.fanout,
    };
    // The model sees the *actual* environment the trial runs under (the
    // scenario's loss and initially-crashed fraction); only the Pittel
    // constant comes from the protocol's configured estimates, because the
    // round budgets do.
    let env = EnvParams {
        loss_probability: scenario.loss_probability,
        crash_probability: scenario.crash_fraction,
        pittel_constant: scenario.protocol.env.pittel_constant,
    };
    let provider = match scenario.membership {
        MembershipSpec::Global => ProviderShape::Global,
        MembershipSpec::Partial { view_size, .. } => ProviderShape::Partial { view_size },
        // The lazy provider answers like converged delegate tables, so it
        // maps onto the same model shape.
        MembershipSpec::Delegate { slots, .. } | MembershipSpec::DelegateLazy { slots } => {
            ProviderShape::Delegate { slots }
        }
    };
    let mut model = DecentralizedModel::new(group, env, provider)
        .with_churn(churn_profile(scenario));
    if let Some(tuning) = &scenario.protocol.tuning {
        model = model.with_tuning(tuning.threshold);
    }
    let report: DecentralizedReport = model.predict(scenario.matching_rate);
    let faultless = scenario.fault_plan().is_neutral();
    let no_flash_crowd = scenario.join_schedule.is_empty();
    // The analytical model knows one audience per trial; a multi-topic
    // workload disseminates many overlapping audiences concurrently, which
    // the single-matching-rate reliability formula does not describe.
    let no_topics = scenario.topics.is_none();
    // Below one expected interested entity per leaf view the model
    // degenerates (see the module docs).
    let audience_in_domain = scenario.arity as f64 * scenario.matching_rate >= 1.0;
    let (provider_in_domain, tolerance_scale) = match provider {
        ProviderShape::Partial { .. } => (
            scenario.capacity() >= PARTIAL_VIEW_DOMAIN_FLOOR,
            2.0,
        ),
        _ => (true, 1.0),
    };
    ModelPrediction {
        reliability: report.reliability,
        rounds: report.total_rounds,
        view_entries: report.view_entries,
        in_domain: faultless
            && no_flash_crowd
            && no_topics
            && audience_in_domain
            && provider_in_domain,
        tolerance_scale,
    }
}

impl ModelPrediction {
    /// The prediction's contribution to a sweep's `--json` row: the
    /// `predicted`, `predicted_rounds` and `model_in_domain` fields, ready
    /// to splice after a comma.
    pub fn json_fields(&self) -> String {
        format!(
            "\"predicted\":{:.6},\"predicted_rounds\":{},\"model_in_domain\":{}",
            self.reliability, self.rounds, self.in_domain
        )
    }

    /// Compact human-readable rendering for sweep tables: the predicted
    /// reliability, or `-` for out-of-domain rows.
    pub fn display(&self) -> String {
        if self.in_domain {
            format!("{:.3}", self.reliability)
        } else {
            "-".to_string()
        }
    }
}

/// Collects predicted-vs-simulated pairs and turns them into a pass/fail
/// verdict at a given absolute reliability tolerance — the library half of
/// every sweep's `--check-model <tolerance>` flag.
#[derive(Debug, Clone)]
pub struct DriftGate {
    tolerance: f64,
    checked: usize,
    skipped: usize,
    failures: Vec<String>,
}

impl DriftGate {
    /// A gate with the given absolute reliability tolerance.
    pub fn new(tolerance: f64) -> Self {
        Self {
            tolerance,
            checked: 0,
            skipped: 0,
            failures: Vec::new(),
        }
    }

    /// Records one predicted-vs-simulated pair.  Out-of-domain predictions
    /// are counted but never fail the gate; in-domain rows fail when the
    /// absolute reliability error exceeds the tolerance times the row's
    /// [`ModelPrediction::tolerance_scale`].
    pub fn record(&mut self, label: &str, prediction: &ModelPrediction, simulated: f64) {
        if !prediction.in_domain {
            self.skipped += 1;
            return;
        }
        self.checked += 1;
        let budget = self.tolerance * prediction.tolerance_scale;
        let error = (prediction.reliability - simulated).abs();
        if error > budget {
            self.failures.push(format!(
                "{label}: predicted {:.4} vs simulated {simulated:.4} (|err| {error:.4} > {budget:.4})",
                prediction.reliability
            ));
        }
    }

    /// Number of in-domain rows gated so far.
    pub fn checked(&self) -> usize {
        self.checked
    }

    /// Number of out-of-domain rows skipped so far.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// `Ok` when every in-domain row was within budget, otherwise an error
    /// message listing each drifting row.
    pub fn verdict(&self) -> Result<(), String> {
        if self.failures.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "model drift: {} of {} gated rows exceed tolerance {}\n  {}",
                self.failures.len(),
                self.checked,
                self.tolerance,
                self.failures.join("\n  ")
            ))
        }
    }

    /// One-line summary for sweep footers.
    pub fn summary(&self) -> String {
        format!(
            "model check: {} rows gated at |err| <= {}, {} out-of-domain rows skipped",
            self.checked, self.tolerance, self.skipped
        )
    }
}

/// Parses a `--check-model <tolerance>` argument pair out of a raw
/// argument list, returning the gate (if requested) and the remaining
/// arguments.  Shared by the sweep examples so the flag behaves identically
/// everywhere.
pub fn parse_check_model(args: &[String]) -> (Option<DriftGate>, Vec<String>) {
    let mut gate = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--check-model" {
            let tolerance = iter
                .next()
                .and_then(|raw| raw.parse::<f64>().ok())
                .filter(|tolerance| *tolerance > 0.0)
                .unwrap_or_else(|| {
                    eprintln!("--check-model requires a positive tolerance, e.g. --check-model 0.05");
                    std::process::exit(2);
                });
            gate = Some(DriftGate::new(tolerance));
        } else {
            rest.push(arg.clone());
        }
    }
    (gate, rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Protocol;

    #[test]
    fn prediction_consumes_no_randomness_and_matches_quick_sim() {
        let scenario = Scenario::builder().group(6, 3).loss(0.01).trials(3).seed(42).build();
        let prediction = predict(&scenario);
        assert!(prediction.in_domain);
        assert_eq!(prediction.tolerance_scale, 1.0);
        let outcomes = scenario.run(Protocol::Pmcast);
        let simulated = outcomes
            .iter()
            .map(|outcome| outcome.report.delivery_ratio())
            .sum::<f64>()
            / outcomes.len() as f64;
        assert!(
            (prediction.reliability - simulated).abs() < 0.08,
            "predicted {} vs simulated {simulated}",
            prediction.reliability
        );
    }

    #[test]
    fn fault_axes_leave_the_domain() {
        let base = Scenario::builder().group(4, 2);
        assert!(predict(&base.clone().build()).in_domain);
        assert!(!predict(&base.clone().partition(2, 4, 2).build()).in_domain);
        assert!(!predict(&base.clone().link_delay(1, 2).build()).in_domain);
        assert!(!predict(&base.clone().subtree_loss(&[1], 0.2).build()).in_domain);
        assert!(!predict(&base.clone().straggler(3, 2).build()).in_domain);
        assert!(!predict(&base.clone().join_at(3, 7).build()).in_domain);
        // Multi-topic traffic is out of the single-audience model's domain,
        // and the lazy delegate provider predicts like the dense one.
        use crate::scenario::TopicWorkload;
        let topical = base.clone().topics(TopicWorkload::new(4, 1, 10)).build();
        assert!(!predict(&topical).in_domain);
        let dense = base.clone().membership(MembershipSpec::delegate(3)).build();
        let lazy = base
            .clone()
            .membership(MembershipSpec::delegate_lazy(3))
            .build();
        assert_eq!(predict(&dense).reliability, predict(&lazy).reliability);
        assert!(predict(&lazy).in_domain);
    }

    #[test]
    fn sub_entity_leaf_audiences_are_out_of_domain() {
        // a = 6: below p_d = 1/6 the expected interested audience of a leaf
        // view drops under one entity and the model degenerates.
        let at = |rate: f64| predict(&Scenario::builder().group(6, 3).matching_rate(rate).build());
        assert!(!at(0.1).in_domain);
        assert!(at(0.3).in_domain);
        // The paper-scale tree (a = 22) keeps p_d = 0.1 in domain.
        let paper = predict(&Scenario::builder().group(22, 3).matching_rate(0.1).build());
        assert!(paper.in_domain);
    }

    #[test]
    fn small_flat_views_are_out_of_domain_but_paper_scale_is_in() {
        let quick = Scenario::builder()
            .group(6, 3)
            .membership(MembershipSpec::partial(42))
            .build();
        let prediction = predict(&quick);
        assert!(!prediction.in_domain);
        assert_eq!(prediction.view_entries, 42);
        let paper = Scenario::builder()
            .group(22, 3)
            .membership(MembershipSpec::partial(512))
            .build();
        let at_paper = predict(&paper);
        assert!(at_paper.in_domain);
        assert_eq!(at_paper.tolerance_scale, 2.0);
    }

    #[test]
    fn churn_schedules_become_departure_fractions() {
        let mut builder = Scenario::builder().group(6, 3);
        // 10% of 216 leaving at rounds 2..=6.
        let mut index = 0;
        for round in 2..=6u64 {
            for _ in 0..4 {
                builder = builder.leave_at(round, index);
                index += 1;
            }
        }
        let scenario = builder.build();
        let churned = predict(&scenario);
        let static_prediction = predict(&Scenario::builder().group(6, 3).build());
        assert!(churned.in_domain);
        assert!(churned.reliability < static_prediction.reliability - 0.05);
    }

    #[test]
    fn drift_gate_passes_within_tolerance_and_fails_beyond() {
        let scenario = Scenario::builder().group(6, 3).loss(0.01).build();
        let prediction = predict(&scenario);
        let mut gate = DriftGate::new(0.05);
        gate.record("close", &prediction, prediction.reliability + 0.01);
        assert_eq!(gate.checked(), 1);
        assert!(gate.verdict().is_ok());
        // A gate with an absurdly tight tolerance must actually fail: this
        // is the test that the `--check-model` machinery can say "no".
        let mut tight = DriftGate::new(1e-9);
        tight.record("drift", &prediction, prediction.reliability + 0.02);
        let verdict = tight.verdict();
        assert!(verdict.is_err());
        assert!(verdict.unwrap_err().contains("drift"));
    }

    #[test]
    fn out_of_domain_rows_never_fail_the_gate() {
        let faulted = Scenario::builder().group(4, 2).partition(2, 4, 2).build();
        let prediction = predict(&faulted);
        let mut gate = DriftGate::new(1e-9);
        gate.record("faulted", &prediction, 0.0);
        assert_eq!(gate.checked(), 0);
        assert_eq!(gate.skipped(), 1);
        assert!(gate.verdict().is_ok());
    }

    #[test]
    fn flat_rows_get_twice_the_budget() {
        let paper = Scenario::builder()
            .group(22, 3)
            .membership(MembershipSpec::partial(512))
            .build();
        let prediction = predict(&paper);
        let mut gate = DriftGate::new(0.05);
        // An error of 0.08 fits in the doubled (0.10) flat budget …
        gate.record("flat", &prediction, prediction.reliability + 0.08);
        assert!(gate.verdict().is_ok());
        // … but not in a 0.03 base budget (0.06 doubled).
        let mut tight = DriftGate::new(0.03);
        tight.record("flat", &prediction, prediction.reliability + 0.08);
        assert!(tight.verdict().is_err());
    }

    #[test]
    fn json_fields_are_stable() {
        let prediction = ModelPrediction {
            reliability: 0.987654321,
            rounds: 16,
            view_entries: 42,
            in_domain: true,
            tolerance_scale: 1.0,
        };
        assert_eq!(
            prediction.json_fields(),
            "\"predicted\":0.987654,\"predicted_rounds\":16,\"model_in_domain\":true"
        );
        assert_eq!(prediction.display(), "0.988");
    }

    #[test]
    fn check_model_flag_parses_out_of_argument_lists() {
        let args: Vec<String> = ["--paper", "--check-model", "0.05", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (gate, rest) = parse_check_model(&args);
        assert!(gate.is_some());
        assert_eq!(rest, vec!["--paper".to_string(), "--json".to_string()]);
        let (none, rest) = parse_check_model(&rest);
        assert!(none.is_none());
        assert_eq!(rest.len(), 2);
    }
}
