//! Heavy multi-topic traffic: throughput, spurious-delivery ratio and
//! hashcons effectiveness under a production-style pub/sub workload.
//!
//! The paper's Fig. 5 story — per-depth interest filtering keeps spurious
//! deliveries low without sacrificing reliability — is exercised here at
//! traffic volume instead of a single matching rate: `n` processes
//! subscribe to a few of many overlapping topics and thousands of events
//! are published over a Zipf-skewed topic mix, spread over enough rounds
//! that hundreds are concurrently in flight.  Three pmcast arms differ
//! only in how the fanout draw treats interest:
//!
//! * **oracle** — the historical arm: draw, then consult the global
//!   oracle per target (unrealistic knowledge, the paper's comparison
//!   point);
//! * **summary** — aggregated interest routing: the delegate hierarchy's
//!   per-subtree summaries veto provably-uninterested subtrees *before*
//!   the draw;
//! * **blind** — no interest filtering at all (the control arm:
//!   aggregation off).
//!
//! The report shows events/sec (wall-clock, full dissemination to
//! quiescence), delivered reliability, the spurious-delivery ratio and
//! the message count per arm — summary must match blind's reliability
//! (the skip is an over-approximation, it never cuts a subscriber) while
//! cutting spurious traffic toward the oracle arm's level.  A genuine-
//! multicast run over the same schedule reports the audience hashcons
//! counters: registering the whole event stream builds one audience
//! allocation per **distinct** audience, not per event.
//!
//! ```text
//! cargo run --release --example topic_sweep             # 50 topics, 10k events
//! cargo run --release --example topic_sweep -- --quick  # 12 topics, 300 events (CI smoke)
//! cargo run --release --example topic_sweep -- --json   # machine-readable (BENCH_PR10.json)
//! ```

use std::time::Instant;

use pmcast::sim::runner::run_scenario_trial_states;
use pmcast::{
    GenuineFactory, InterestRouting, MembershipSpec, PmcastConfig, Protocol, Scenario,
    TopicWorkload,
};

struct Row {
    routing: &'static str,
    events_per_sec: f64,
    reliability: f64,
    spurious_ratio: f64,
    messages: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|arg| arg == "--quick");
    let json = args.iter().any(|arg| arg == "--json");

    // 4^3 = 64 processes; every process subscribes to 3 topics.  The full
    // run is the acceptance workload (10k events over 50 overlapping
    // topics); --quick keeps the same shape at smoke-test volume.
    let (arity, depth) = (4u32, 3usize);
    let n = (arity as usize).pow(depth as u32);
    let (topics, events, publish_rounds) = if quick { (12, 300, 30) } else { (50, 10_000, 250) };
    let workload = TopicWorkload::new(topics, 3, events).with_publish_rounds(publish_rounds);

    let scenario_with = |routing: InterestRouting, membership: MembershipSpec| {
        Scenario::builder()
            .group(arity, depth)
            .topics(workload.clone())
            .membership(membership)
            .protocol(PmcastConfig::default().with_interest_routing(routing))
            .trials(1)
            .seed(42)
            .build()
    };

    if !json {
        println!(
            "pmcast multi-topic throughput — n = {n}, {topics} topics, {events} events \
             over {publish_rounds} rounds, 3 subscriptions/process, Zipf 1.0, loss-free"
        );
        println!(
            "{:>8} {:>12} {:>12} {:>10} {:>12}",
            "routing", "events/s", "delivered", "spurious", "messages"
        );
    }

    let arms = [
        ("oracle", InterestRouting::Oracle),
        ("summary", InterestRouting::Summary),
        ("blind", InterestRouting::Blind),
    ];
    let mut rows = Vec::new();
    for (name, routing) in arms {
        // The delegate hierarchy carries the subtree summaries the summary
        // arm consults; the other arms run on the same provider so the
        // only variable is the routing mode.
        let scenario = scenario_with(routing, MembershipSpec::delegate(4));
        let started = Instant::now();
        let outcome = &scenario.run(Protocol::Pmcast)[0];
        let seconds = started.elapsed().as_secs_f64();
        let row = Row {
            routing: name,
            events_per_sec: events as f64 / seconds,
            reliability: outcome.report.delivery_ratio(),
            spurious_ratio: outcome.report.spurious_ratio(),
            messages: outcome.messages_sent,
        };
        if !json {
            println!(
                "{:>8} {:>12.0} {:>12.4} {:>10.4} {:>12}",
                row.routing, row.events_per_sec, row.reliability, row.spurious_ratio, row.messages
            );
        }
        rows.push(row);
    }

    // Hashcons effectiveness: the genuine baseline registers every event's
    // audience in its shared directory; with the topic index as the
    // hashcons key, the whole stream builds one audience per *distinct*
    // audience.  (Global membership: the sharp-contract reference arm.)
    let genuine = scenario_with(InterestRouting::Oracle, MembershipSpec::Global);
    let (_, states) = run_scenario_trial_states::<GenuineFactory>(&genuine, 0);
    let stats = states[0].directory_stats();
    let requested = stats.hits + stats.misses;
    let reduction = if stats.misses == 0 {
        requested as f64
    } else {
        requested as f64 / stats.misses as f64
    };

    if json {
        let rows_json: Vec<String> = rows
            .iter()
            .map(|row| {
                format!(
                    "{{\"routing\":\"{}\",\"events_per_sec\":{:.0},\"reliability\":{:.4},\
                     \"spurious_ratio\":{:.4},\"messages\":{}}}",
                    row.routing, row.events_per_sec, row.reliability, row.spurious_ratio,
                    row.messages
                )
            })
            .collect();
        println!(
            "{{\"n\":{n},\"topics\":{topics},\"subscriptions_per_process\":3,\
             \"events\":{events},\"publish_rounds\":{publish_rounds},\"zipf_exponent\":1.0,\
             \"hashcons\":{{\"requested\":{requested},\"built\":{},\"hit_rate\":{:.4},\
             \"alloc_reduction\":{reduction:.1}}},\"rows\":[{}]}}",
            stats.misses,
            stats.hit_rate(),
            rows_json.join(",")
        );
    } else {
        println!(
            "\naudience hashcons (genuine directory over the same {events}-event stream): \
             {requested} audience requests -> {} built ({:.1}% hits, {reduction:.0}x fewer \
             allocations)",
            stats.misses,
            stats.hit_rate() * 100.0
        );
        println!(
            "(summary = aggregated interest routing through the delegate hierarchy's subtree \
             summaries, skipping provably-uninterested subtrees before the fanout draw; blind = \
             aggregation off.  Equal reliability with fewer spurious receptions and messages is \
             the acceptance bar.)"
        );
    }
}
