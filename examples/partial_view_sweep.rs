//! Reliability vs. membership knowledge: what each *shape* of partial
//! knowledge costs each protocol.
//!
//! Two bounded membership providers are swept against the global-knowledge
//! baseline:
//!
//! * **Flat** — an lpbcast-style [`pmcast::PartialView`] bounded to `ℓ`
//!   uniformly mixed peers (the `MembershipSpec::partial` axis).  Flooding
//!   (which *is* gossip over the view) barely notices, the genuine baseline
//!   loses the audience members it does not know — and pmcast collapses,
//!   because its tree delegates are rarely inside a small random sample.
//! * **Delegate** — the paper's own Section 2 view-table maintenance
//!   ([`pmcast::DelegateView`], the `MembershipSpec::delegate` axis): views
//!   of comparable bounded size, but structured by the tree coordinates so
//!   the per-depth delegate slots contain exactly the processes pmcast
//!   gossips through.  Same bound, no collapse — the hierarchy, not the
//!   amount of knowledge, is what pmcast needs.
//!
//! ```text
//! cargo run --release --example partial_view_sweep            # quick, n = 216
//! cargo run --release --example partial_view_sweep -- --paper # n = 10 648
//! ```

use pmcast::{DelegateViewConfig, Event, MembershipSpec, Protocol, Publisher, Scenario};

const PROTOCOLS: [Protocol; 3] = [
    Protocol::Pmcast,
    Protocol::FloodBroadcast,
    Protocol::GenuineMulticast,
];

fn main() {
    let paper = std::env::args().any(|arg| arg == "--paper");
    // Quick profile: the default 6^3 tree; paper profile: the 22^3 group of
    // Figures 4-7.
    let (arity, depth, trials, view_sizes, slot_counts): (u32, usize, usize, &[usize], &[usize]) =
        if paper {
            (22, 3, 3, &[16, 32, 64, 128, 256, 512], &[1, 2, 3])
        } else {
            (6, 3, 3, &[8, 16, 32, 64, 128], &[1, 2, 3])
        };
    let n = (arity as usize).pow(depth as u32);
    println!(
        "reliability vs. membership knowledge — n = {n}, matching rate 0.5, 1% loss, {trials} trials"
    );

    let scenario_for = |membership: MembershipSpec| {
        Scenario::builder()
            .group(arity, depth)
            .matching_rate(0.5)
            .loss(0.01)
            .membership(membership)
            .publish(Publisher::Interested, Event::builder(1).int("b", 1).build())
            .trials(trials)
            .seed(42)
            .build()
    };
    let delivery = |scenario: &Scenario, protocol: Protocol| -> f64 {
        let outcomes = scenario.run_parallel(protocol);
        outcomes.iter().map(|o| o.report.delivery_ratio()).sum::<f64>() / outcomes.len() as f64
    };
    let print_row = |label: &str, entries: usize, scenario: &Scenario| {
        print!("{:>16} {:>7} {:>6.3} ", label, entries, entries as f64 / n as f64);
        for protocol in PROTOCOLS {
            print!(" {:>17.3}", delivery(scenario, protocol));
        }
        println!();
    };

    println!(
        "{:>16} {:>7} {:>6}  {:>18} {:>18} {:>18}",
        "membership", "entries", "ℓ/n", "pmcast", "flood broadcast", "genuine multicast"
    );

    // Flat lpbcast-style views: bounded uniform random samples.
    for &view_size in view_sizes {
        let scenario = scenario_for(MembershipSpec::partial(view_size));
        print_row(&format!("flat ℓ={view_size}"), view_size, &scenario);
    }

    // Hierarchical delegate views: comparable bounds, tree-structured.
    for &slots in slot_counts {
        let entries = DelegateViewConfig::default()
            .with_slots(slots)
            .table_entries(arity, depth);
        let scenario = scenario_for(MembershipSpec::delegate(slots));
        print_row(&format!("delegate R={slots}"), entries, &scenario);
    }

    // The global-knowledge baseline every curve converges towards.
    let global = scenario_for(MembershipSpec::Global);
    print_row("global", n - 1, &global);

    println!(
        "\n(flat = lpbcast-style bounded random views (MembershipSpec::partial); delegate = the \
         paper's Section 2 per-depth delegate tables (MembershipSpec::delegate), whose bounded \
         views contain pmcast's tree delegates by construction — see crates/membership's \
         provider and delegate module docs.  Membership gossip runs one exchange per simulation \
         round in both.)"
    );
}
