//! Reliability vs. membership knowledge: what each *shape* of partial
//! knowledge costs each protocol.
//!
//! Two bounded membership providers are swept against the global-knowledge
//! baseline:
//!
//! * **Flat** — an lpbcast-style [`pmcast::PartialView`] bounded to `ℓ`
//!   uniformly mixed peers (the `MembershipSpec::partial` axis).  Flooding
//!   (which *is* gossip over the view) barely notices, the genuine baseline
//!   loses the audience members it does not know — and pmcast collapses,
//!   because its tree delegates are rarely inside a small random sample.
//! * **Delegate** — the paper's own Section 2 view-table maintenance
//!   ([`pmcast::DelegateView`], the `MembershipSpec::delegate` axis): views
//!   of comparable bounded size, but structured by the tree coordinates so
//!   the per-depth delegate slots contain exactly the processes pmcast
//!   gossips through.  Same bound, no collapse — the hierarchy, not the
//!   amount of knowledge, is what pmcast needs.
//!
//! The pmcast column carries the provider-aware analytical prediction
//! (`pmcast_sim::prediction`) next to the simulated value; `--check-model
//! <tol>` exits nonzero when an in-domain row drifts beyond the tolerance
//! (flat rows are gated only at paper scale, at twice the base tolerance —
//! see `ARCHITECTURE.md` invariant 9).
//!
//! ```text
//! cargo run --release --example partial_view_sweep            # quick, n = 216
//! cargo run --release --example partial_view_sweep -- --paper # n = 10 648
//! cargo run --release --example partial_view_sweep -- --json  # machine-readable lines
//! cargo run --release --example partial_view_sweep -- --check-model 0.08
//! ```

use pmcast::{
    parse_check_model, predict, DelegateViewConfig, Event, MembershipSpec, Protocol, Publisher,
    Scenario,
};

const PROTOCOLS: [Protocol; 3] = [
    Protocol::Pmcast,
    Protocol::FloodBroadcast,
    Protocol::GenuineMulticast,
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut gate, args) = parse_check_model(&args);
    let paper = args.iter().any(|arg| arg == "--paper");
    let json = args.iter().any(|arg| arg == "--json");
    // Quick profile: the default 6^3 tree; paper profile: the 22^3 group of
    // Figures 4-7.
    let (arity, depth, trials, view_sizes, slot_counts): (u32, usize, usize, &[usize], &[usize]) =
        if paper {
            (22, 3, 3, &[16, 32, 64, 128, 256, 512], &[1, 2, 3])
        } else {
            (6, 3, 3, &[8, 16, 32, 64, 128], &[1, 2, 3])
        };
    let n = (arity as usize).pow(depth as u32);
    if !json {
        println!(
            "reliability vs. membership knowledge — n = {n}, matching rate 0.5, 1% loss, \
             {trials} trials (pmcast column: simulated/model-predicted, '-' = out of model domain)"
        );
    }

    let scenario_for = |membership: MembershipSpec| {
        Scenario::builder()
            .group(arity, depth)
            .matching_rate(0.5)
            .loss(0.01)
            .membership(membership)
            .publish(Publisher::Interested, Event::builder(1).int("b", 1).build())
            .trials(trials)
            .seed(42)
            .build()
    };
    let delivery = |scenario: &Scenario, protocol: Protocol| -> f64 {
        let outcomes = scenario.run_parallel(protocol);
        outcomes.iter().map(|o| o.report.delivery_ratio()).sum::<f64>() / outcomes.len() as f64
    };
    let mut emit_row = |label: &str, entries: usize, scenario: &Scenario| {
        let prediction = predict(scenario);
        let deliveries: Vec<f64> = PROTOCOLS
            .iter()
            .map(|&protocol| delivery(scenario, protocol))
            .collect();
        // The analytical model predicts pmcast, not the baselines: only the
        // pmcast column is gated.
        if let Some(gate) = gate.as_mut() {
            gate.record(&format!("partial_view_sweep {label}"), &prediction, deliveries[0]);
        }
        if json {
            println!(
                "{{\"membership\":\"{label}\",\"n\":{n},\"entries\":{entries},\
                 \"pmcast\":{:.4},\"flood\":{:.4},\"genuine\":{:.4},{}}}",
                deliveries[0],
                deliveries[1],
                deliveries[2],
                prediction.json_fields()
            );
        } else {
            print!("{:>16} {:>7} {:>6.3} ", label, entries, entries as f64 / n as f64);
            print!(
                " {:>17}",
                format!("{:.3}/{}", deliveries[0], prediction.display())
            );
            for d in &deliveries[1..] {
                print!(" {d:>17.3}");
            }
            println!();
        }
    };

    if !json {
        println!(
            "{:>16} {:>7} {:>6}  {:>18} {:>18} {:>18}",
            "membership", "entries", "ℓ/n", "pmcast sim/pred", "flood broadcast", "genuine multicast"
        );
    }

    // Flat lpbcast-style views: bounded uniform random samples.
    for &view_size in view_sizes {
        let scenario = scenario_for(MembershipSpec::partial(view_size));
        emit_row(&format!("flat ℓ={view_size}"), view_size, &scenario);
    }

    // Hierarchical delegate views: comparable bounds, tree-structured.
    for &slots in slot_counts {
        let entries = DelegateViewConfig::default()
            .with_slots(slots)
            .table_entries(arity, depth);
        let scenario = scenario_for(MembershipSpec::delegate(slots));
        emit_row(&format!("delegate R={slots}"), entries, &scenario);
    }

    // The global-knowledge baseline every curve converges towards.
    let global = scenario_for(MembershipSpec::Global);
    emit_row("global", n - 1, &global);

    if !json {
        println!(
            "\n(flat = lpbcast-style bounded random views (MembershipSpec::partial); delegate = the \
             paper's Section 2 per-depth delegate tables (MembershipSpec::delegate), whose bounded \
             views contain pmcast's tree delegates by construction — see crates/membership's \
             provider and delegate module docs.  Membership gossip runs one exchange per simulation \
             round in both.)"
        );
    }
    if let Some(gate) = gate {
        eprintln!("{}", gate.summary());
        if let Err(drift) = gate.verdict() {
            eprintln!("{drift}");
            std::process::exit(1);
        }
    }
}
