//! Reliability vs. membership view size: what partial knowledge costs each
//! protocol.
//!
//! Every process draws its fanout candidates from an lpbcast-style
//! [`pmcast::PartialView`] bounded to `ℓ` peers (the `MembershipSpec`
//! scenario axis), while membership gossip keeps discovering the group in
//! the background.  Sweeping `ℓ` produces the reliability-vs-view-size
//! curve the partial-membership literature studies: flooding (which *is*
//! gossip over the view) barely notices, the genuine baseline loses the
//! audience members it does not know, and pmcast needs the view to have
//! discovered its tree delegates.
//!
//! ```text
//! cargo run --release --example partial_view_sweep            # quick, n = 216
//! cargo run --release --example partial_view_sweep -- --paper # n = 10 648
//! ```

use pmcast::{Event, MembershipSpec, Protocol, Publisher, Scenario};

fn main() {
    let paper = std::env::args().any(|arg| arg == "--paper");
    // Quick profile: the default 6^3 tree; paper profile: the 22^3 group of
    // Figures 4-7.
    let (arity, depth, trials, view_sizes): (u32, usize, usize, &[usize]) = if paper {
        (22, 3, 3, &[16, 32, 64, 128, 256, 512])
    } else {
        (6, 3, 3, &[8, 16, 32, 64, 128])
    };
    let n = (arity as usize).pow(depth as u32);
    println!(
        "reliability vs. partial-view size — n = {n}, matching rate 0.5, 1% loss, {trials} trials"
    );
    println!(
        "{:>10} {:>5}  {:>18} {:>18} {:>18}",
        "view size", "ℓ/n", "pmcast", "flood broadcast", "genuine multicast"
    );

    let scenario_for = |membership: MembershipSpec| {
        Scenario::builder()
            .group(arity, depth)
            .matching_rate(0.5)
            .loss(0.01)
            .membership(membership)
            .publish(Publisher::Interested, Event::builder(1).int("b", 1).build())
            .trials(trials)
            .seed(42)
            .build()
    };
    let delivery = |scenario: &Scenario, protocol: Protocol| -> f64 {
        let outcomes = scenario.run_parallel(protocol);
        outcomes.iter().map(|o| o.report.delivery_ratio()).sum::<f64>() / outcomes.len() as f64
    };

    for &view_size in view_sizes {
        let scenario = scenario_for(MembershipSpec::partial(view_size));
        print!("{:>10} {:>5.2} ", view_size, view_size as f64 / n as f64);
        for protocol in [Protocol::Pmcast, Protocol::FloodBroadcast, Protocol::GenuineMulticast] {
            print!(" {:>17.3}", delivery(&scenario, protocol));
        }
        println!();
    }

    // The global-knowledge baseline every curve converges towards.
    let global = scenario_for(MembershipSpec::Global);
    print!("{:>10} {:>5}  ", "global", "1.00");
    for protocol in [Protocol::Pmcast, Protocol::FloodBroadcast, Protocol::GenuineMulticast] {
        print!(" {:>17.3}", delivery(&global, protocol));
    }
    println!();
    println!(
        "\n(ℓ = bounded per-process view; membership gossip runs one exchange per simulation \
         round — see MembershipSpec::partial and crates/membership's provider docs)"
    );
}
