//! Quickstart: multicast one event over a 64-process group and print who
//! delivered it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::error::Error;
use std::sync::Arc;

use pmcast::{
    build_group, AddressSpace, AssignmentOracle, Event, ImplicitRegularTree, InterestOracle,
    MulticastReport, NetworkConfig, PmcastConfig, ProcessId, Simulation, TreeTopology,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Shape the group: a regular tree of depth 3 with 4 subgroups per
    //    level, i.e. 64 processes with addresses 0.0.0 … 3.3.3.
    let space = AddressSpace::regular(3, 4)?;
    let topology = ImplicitRegularTree::new(space);
    println!("group of {} processes, depth {}", topology.member_count(), topology.depth());

    // 2. Decide who is interested: every process independently with
    //    probability 0.5 (the workload of the paper's analysis).
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let oracle = Arc::new(AssignmentOracle::sample(&topology, 0.5, &mut rng));
    println!("{} processes are interested in the event", oracle.len());

    // 3. Build one pmcast protocol instance per process and wire them to the
    //    simulated network (1% message loss).
    let config = PmcastConfig::default(); // R = 3, F = 2
    let group = build_group(&topology, oracle.clone(), &config);
    let mut sim = Simulation::new(group.processes, NetworkConfig::default().with_loss(0.01).with_seed(7));

    // 4. Publish an event from process 0.0.0 and run to quiescence.
    let event = Event::builder(1).int("b", 2).float("c", 55.5).build();
    sim.process_mut(ProcessId(0)).pmcast(event.clone());
    let rounds = sim.run_until_quiescent(300);

    // 5. Report.
    let report = MulticastReport::collect(&event, sim.processes(), oracle.as_ref());
    println!("\nafter {rounds} gossip rounds:");
    println!(
        "  interested processes     : {:4}  delivered: {:4}  (delivery probability {:.3})",
        report.interested,
        report.delivered_interested,
        report.delivery_ratio()
    );
    println!(
        "  uninterested processes   : {:4}  received : {:4}  (spurious reception  {:.3})",
        report.uninterested,
        report.received_uninterested,
        report.spurious_ratio()
    );
    println!("  gossip messages sent     : {}", sim.stats().messages_sent);

    // Show a few individual outcomes.
    println!("\nsample of deliveries:");
    for process in sim.processes().take(8) {
        println!(
            "  {}  interested={}  delivered={}",
            process.address(),
            oracle.is_interested(process.address(), &event),
            process.has_delivered(event.id()),
        );
    }
    Ok(())
}
