//! Quickstart: multicast one event over a 64-process group and print who
//! delivered it — then run the same workload on all three protocols with
//! the `Scenario` API.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! ## The API-stability invariant
//!
//! Two rules keep this example (and every harness in the workspace) stable
//! as the codebase grows:
//!
//! * **All protocols implement `MulticastProtocol`.**  pmcast and both
//!   baselines are built through a `ProtocolFactory` (`PmcastFactory`,
//!   `FloodFactory`, `GenuineFactory`) from the same
//!   `(topology, oracle, membership, config)` quadruple, publish shared `Arc<Event>`
//!   payloads, and answer the same delivery/reception queries.  Code
//!   written against the trait — like step 3 below — works for any
//!   protocol, with static dispatch only.
//! * **Scenarios are built, not forked.**  A workload (how many publishers,
//!   which events, at which rounds, under what loss and churn) is described
//!   declaratively with `Scenario::builder()` and executed by the one
//!   generic trial loop in `pmcast_sim::runner`; new workloads never copy
//!   simulation code.

use std::error::Error;
use std::sync::Arc;

use pmcast::{
    AddressSpace, AssignmentOracle, Event, GlobalOracleView, ImplicitRegularTree, InterestOracle,
    MembershipSpec, MulticastReport, NetworkConfig, PmcastConfig, PmcastFactory, ProcessId,
    Protocol, ProtocolFactory, Publisher, Scenario, Simulation, TreeTopology,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Shape the group: a regular tree of depth 3 with 4 subgroups per
    //    level, i.e. 64 processes with addresses 0.0.0 … 3.3.3.
    let space = AddressSpace::regular(3, 4)?;
    let topology = ImplicitRegularTree::new(space);
    println!("group of {} processes, depth {}", topology.member_count(), topology.depth());

    // 2. Decide who is interested: every process independently with
    //    probability 0.5 (the workload of the paper's analysis).
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let oracle = Arc::new(AssignmentOracle::sample(&topology, 0.5, &mut rng));
    println!("{} processes are interested in the event", oracle.len());

    // 3. Build one pmcast protocol instance per process through the
    //    factory and wire them to the simulated network (1% message loss).
    //    Swapping `PmcastFactory` for `FloodFactory` or `GenuineFactory`
    //    is the only change needed to run a baseline instead.
    let config = PmcastConfig::default(); // R = 3, F = 2
    // Membership knowledge is pluggable too: `GlobalOracleView` models the
    // closed group every process knows in full (swap in a `PartialView` for
    // gossip-discovered membership — see examples/partial_view_sweep.rs).
    let membership = Arc::new(GlobalOracleView::new(topology.member_count()));
    let group = PmcastFactory::build(&topology, oracle.clone(), membership, &config);
    let mut sim = Simulation::new(group.processes, NetworkConfig::default().with_loss(0.01).with_seed(7));

    // 4. Publish an event from process 0.0.0 and run to quiescence.  The
    //    payload is allocated once and shared (`Arc`) through buffering,
    //    gossiping and delivery.
    let event = Event::builder(1).int("b", 2).float("c", 55.5).build();
    sim.process_mut(ProcessId(0)).publish(Arc::new(event.clone()));
    let rounds = sim.run_until_quiescent(300);

    // 5. Report.
    let report = MulticastReport::collect(&event, sim.processes(), oracle.as_ref());
    println!("\nafter {rounds} gossip rounds:");
    println!(
        "  interested processes     : {:4}  delivered: {:4}  (delivery probability {:.3})",
        report.interested,
        report.delivered_interested,
        report.delivery_ratio()
    );
    println!(
        "  uninterested processes   : {:4}  received : {:4}  (spurious reception  {:.3})",
        report.uninterested,
        report.received_uninterested,
        report.spurious_ratio()
    );
    println!("  gossip messages sent     : {}", sim.stats().messages_sent);

    // Show a few individual outcomes.
    println!("\nsample of deliveries:");
    for process in sim.processes().take(8) {
        println!(
            "  {}  interested={}  delivered={}",
            process.address(),
            oracle.is_interested(process.address(), &event),
            process.has_delivered(event.id()),
        );
    }

    // 6. The same comparison, declaratively: one scenario (two publishers,
    //    two events, 1% loss) run on all three protocols by the generic
    //    trial engine.
    let scenario = Scenario::builder()
        .group(4, 3)
        .matching_rate(0.5)
        .loss(0.01)
        .publish(Publisher::Interested, Event::builder(10).int("b", 2).build())
        .publish_at(3, Publisher::Uniform, Event::builder(11).int("b", 3).build())
        .membership(MembershipSpec::Global) // or MembershipSpec::partial(view_size)
        .seed(7)
        .build();
    println!("\nscenario (2 publishers, 2 events) across protocols:");
    for protocol in [Protocol::Pmcast, Protocol::FloodBroadcast, Protocol::GenuineMulticast] {
        let outcome = &scenario.run(protocol)[0];
        println!(
            "  {:>16?}: delivery {:.3}, spurious {:.3}, {:5} messages, {:3} rounds",
            protocol,
            outcome.report.delivery_ratio(),
            outcome.report.spurious_ratio(),
            outcome.messages_sent,
            outcome.rounds
        );
    }
    Ok(())
}
