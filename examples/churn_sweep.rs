//! Reliability vs. **graceful-leave churn**: what a dynamic population
//! costs each membership provider.
//!
//! Every scenario publishes one event at round 0 and then unsubscribes a
//! growing fraction of the group (`leave_at`, spread over rounds 2–6 —
//! graceful leaves, not crashes: providers are told, and the eager ones
//! evict the leavers immediately).  The same pmcast workload runs over the
//! three membership providers:
//!
//! * **global** — the omniscient static directory ([`pmcast::GlobalOracleView`]);
//!   churn only hurts through the network (messages to departed processes
//!   are dropped).
//! * **delegate** — the paper's Section 2 hierarchical view tables
//!   ([`pmcast::DelegateView`]): bounded, and *maintained* — leavers are
//!   evicted from the per-depth slot groups with deterministic
//!   re-election, so the view tracks the shrinking population.
//! * **flat** — an lpbcast-style bounded random view
//!   ([`pmcast::PartialView`]) of the same size as the delegate tables.
//!
//! A final *flash crowd* row grows the group instead: 10% of the addresses
//! start absent and join at rounds 2–6 (the sparse-bootstrap + mid-trial
//! activation path), with the event published after the crowd has arrived.
//!
//! Every provider column carries the analytical prediction of the
//! churn-aware model (`pmcast_sim::prediction`) next to the simulated
//! value; `--check-model <tol>` exits nonzero when an in-domain row drifts
//! beyond the tolerance (flat rows are gated only at paper scale — see
//! `ARCHITECTURE.md` invariant 9).
//!
//! ```text
//! cargo run --release --example churn_sweep            # quick, n = 216
//! cargo run --release --example churn_sweep -- --paper # n = 10 648
//! cargo run --release --example churn_sweep -- --json  # machine-readable lines
//! cargo run --release --example churn_sweep -- --check-model 0.08
//! ```

use pmcast::{
    parse_check_model, predict, DelegateViewConfig, Event, MembershipSpec, Protocol, Publisher,
    Scenario,
};

const CHURN_RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut gate, args) = parse_check_model(&args);
    let paper = args.iter().any(|arg| arg == "--paper");
    let json = args.iter().any(|arg| arg == "--json");
    let (arity, depth, trials): (u32, usize, usize) = if paper { (22, 3, 3) } else { (6, 3, 3) };
    let n = (arity as usize).pow(depth as u32);
    let delegate_entries = DelegateViewConfig::default()
        .with_slots(3)
        .table_entries(arity, depth);
    let providers: [(&str, MembershipSpec); 3] = [
        ("global", MembershipSpec::Global),
        ("delegate", MembershipSpec::delegate(3)),
        ("flat", MembershipSpec::partial(delegate_entries)),
    ];

    if !json {
        println!(
            "reliability vs. graceful-leave churn — n = {n}, matching rate 0.5, 1% loss, \
             {trials} trials (delegate/flat bounded to {delegate_entries} entries; \
             sim/pred = simulated vs. model-predicted, '-' = out of model domain)"
        );
        println!(
            "{:>12} {:>8} {:>15} {:>15} {:>15}",
            "workload", "churn", "global sim/pred", "delegate s/p", "flat s/p"
        );
    }

    // Deterministic leave schedule: `count` distinct leavers spread evenly
    // over the index space, unsubscribing at rounds 2..=6.  No randomness —
    // the seed contract guarantees lifecycle events never shift a stream.
    let leavers = |rate: f64| -> Vec<(u64, usize)> {
        let count = (rate * n as f64).round() as usize;
        (0..count)
            .map(|i| (2 + (i % 5) as u64, (i * n) / count.max(1)))
            .collect()
    };

    let delivery = |scenario: &Scenario| -> f64 {
        let outcomes = scenario.run_parallel(Protocol::Pmcast);
        outcomes.iter().map(|o| o.report.delivery_ratio()).sum::<f64>() / outcomes.len() as f64
    };

    // `build` produces the scenario for one membership provider, so every
    // variant goes through the builder's validation.
    let mut report = |label: &str, churn: f64, build: &dyn Fn(MembershipSpec) -> Scenario| {
        let mut row = Vec::new();
        for (name, membership) in providers {
            let scenario = build(membership);
            let prediction = predict(&scenario);
            let simulated = delivery(&scenario);
            if let Some(gate) = gate.as_mut() {
                gate.record(&format!("churn_sweep {label} {churn} {name}"), &prediction, simulated);
            }
            row.push((name, simulated, prediction));
        }
        if json {
            let curves: Vec<String> = row
                .iter()
                .map(|(name, d, p)| {
                    format!(
                        "\"{name}\":{d:.4},\"{name}_predicted\":{:.4},\"{name}_in_domain\":{}",
                        p.reliability, p.in_domain
                    )
                })
                .collect();
            println!(
                "{{\"workload\":\"{label}\",\"n\":{n},\"churn\":{churn},\"entries\":{delegate_entries},{}}}",
                curves.join(",")
            );
        } else {
            print!("{label:>12} {churn:>8.2}");
            for (_, d, p) in &row {
                print!(" {:>15}", format!("{d:.3}/{}", p.display()));
            }
            println!();
        }
    };

    // Shrinking population: graceful leaves at increasing churn rates.
    for rate in CHURN_RATES {
        report("leave", rate, &|membership| {
            let mut builder = Scenario::builder()
                .group(arity, depth)
                .matching_rate(0.5)
                .loss(0.01)
                .membership(membership)
                .publish(Publisher::Interested, Event::builder(1).int("b", 1).build())
                .trials(trials)
                .seed(42);
            for (round, process) in leavers(rate) {
                builder = builder.leave_at(round, process);
            }
            builder.build()
        });
    }

    // Growing population (flash crowd): 10% start absent, join at rounds
    // 2..=6, and the event is published at round 8 — after the crowd is in.
    report("flash-crowd", 0.10, &|membership| {
        let mut builder = Scenario::builder()
            .group(arity, depth)
            .matching_rate(0.5)
            .loss(0.01)
            .membership(membership)
            .publish_at(8, Publisher::Interested, Event::builder(1).int("b", 1).build())
            .trials(trials)
            .seed(42);
        for (round, process) in leavers(0.10) {
            builder = builder.join_at(round, process);
        }
        let flash = builder.build();
        assert!(flash.group_size() < flash.capacity());
        flash
    });

    if !json {
        println!(
            "\n(leave rows: the listed fraction unsubscribes gracefully at rounds 2-6, after the \
             round-0 publish — departed processes count as undelivered, so every curve sinks with \
             churn; the research point is the *gap* to the global column.  flash-crowd row: 10% \
             start absent and join at rounds 2-6, publish at round 8.  delegate = maintained \
             Section 2 view tables; flat = same-size lpbcast views.)"
        );
    }
    if let Some(gate) = gate {
        eprintln!("{}", gate.summary());
        if let Err(drift) = gate.verdict() {
            eprintln!("{drift}");
            std::process::exit(1);
        }
    }
}
