//! Graceful degradation under **adversarial network faults**: what each
//! fault family costs pmcast's reliability and latency-to-deliver, per
//! membership provider.
//!
//! The paper's analysis (Section 4.1) assumes uniform message loss `ε` and
//! an independent crash fraction `τ`.  This sweep keeps that baseline and
//! layers the structured fault axes of the scenario builder on top, one
//! family per row:
//!
//! * **baseline** — the paper's `ε`/`τ` model only;
//! * **delay** — jittered per-link extra latency (0–2 rounds per link);
//! * **partition** — the group splits in two cells at round 0 and heals at
//!   round 6, with the event published *into* the partition (round 0);
//! * **partition-heal** — same outage, but the event is published at round
//!   8, *after* the heal: measures whether the membership providers
//!   recovered from the outage;
//! * **subtree-loss** — one top-level subtree suffers heavy extra
//!   correlated loss (composing with the global `ε`);
//! * **straggler** — ~1% of the processes flush their outbox only every
//!   3rd round;
//! * **combined** — delay + healing partition + stragglers at once.
//!
//! Every row reports, per provider (global oracle, hierarchical delegate
//! tables, same-size flat views): the mean delivery ratio, the mean
//! delivery latency in rounds, and the 99th-percentile latency — the
//! latency histograms come from the trial loop's per-event
//! [`pmcast::DeliveryLatency`] tracking.
//!
//! ```text
//! cargo run --release --example adversarial_sweep              # quick, n = 216
//! cargo run --release --example adversarial_sweep -- --quick   # same, explicit
//! cargo run --release --example adversarial_sweep -- --paper   # n = 10 648
//! cargo run --release --example adversarial_sweep -- --json    # machine-readable lines
//! cargo run --release --example adversarial_sweep -- --check-model 0.08
//! ```
//!
//! Each provider cell also carries the analytical prediction
//! (`pmcast_sim::prediction`); fault-axis rows are outside the model's
//! domain ('-') and only the baseline rows are gated by `--check-model`.
//!
//! `BENCH_PR6.json` snapshots the `--paper --json` output; its
//! `partition-heal` row is the PR 6 acceptance bar (delegate-view post-heal
//! reliability within 0.05 of the global oracle at n = 10 648).

use pmcast::{
    parse_check_model, predict, DelegateViewConfig, DeliveryLatency, Event, MembershipSpec,
    ModelPrediction, Protocol, Publisher, Scenario, ScenarioBuilder,
};

/// One fault-family row: label, publish round, builder shape.
type RowSpec<'a> = (&'static str, u64, &'a dyn Fn(ScenarioBuilder) -> ScenarioBuilder);

/// Per-provider measurements of one fault-family row.
struct Curve {
    name: &'static str,
    delivery: f64,
    latency: DeliveryLatency,
    prediction: ModelPrediction,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut gate, args) = parse_check_model(&args);
    let paper = args.iter().any(|arg| arg == "--paper");
    let json = args.iter().any(|arg| arg == "--json");
    let (arity, depth, trials): (u32, usize, usize) = if paper { (22, 3, 3) } else { (6, 3, 3) };
    let n = (arity as usize).pow(depth as u32);
    let delegate_entries = DelegateViewConfig::default()
        .with_slots(3)
        .table_entries(arity, depth);
    let providers: [(&'static str, MembershipSpec); 3] = [
        ("global", MembershipSpec::Global),
        ("delegate", MembershipSpec::delegate(3)),
        ("flat", MembershipSpec::partial(delegate_entries)),
    ];

    // ~1% of the group straggles, spread evenly over the index space, each
    // flushing its outbox only every 3rd round.  Deterministic — fault
    // schedules never consume randomness.
    let stragglers: Vec<usize> = {
        let count = (n / 100).max(1);
        (0..count).map(|i| (i * n) / count).collect()
    };

    // Every family publishes one event; `publish_round` 0 is the paper's
    // shape, the partition-heal row publishes after the outage instead.
    let row_specs: [RowSpec; 7] = [
        ("baseline", 0, &|b| b),
        ("delay", 0, &|b| b.link_delay(0, 2)),
        ("partition", 0, &|b| b.partition(0, 6, 2)),
        ("partition-heal", 8, &|b| b.partition(0, 6, 2)),
        ("subtree-loss", 0, &|b| b.subtree_loss(&[0], 0.25)),
        ("straggler", 0, &|b| {
            let mut b = b;
            for &process in &stragglers {
                b = b.straggler(process, 3);
            }
            b
        }),
        ("combined", 8, &|b| {
            let mut b = b.link_delay(0, 1).partition(0, 6, 2);
            for &process in &stragglers {
                b = b.straggler(process, 3);
            }
            b
        }),
    ];

    if !json {
        println!(
            "pmcast degradation under adversarial faults — n = {n}, matching rate 0.5, 1% loss, \
             0.1% crashes, {trials} trials (delegate/flat bounded to {delegate_entries} entries)"
        );
        println!("{:>16} {:>34} {:>34} {:>34}", "fault", "global", "delegate", "flat");
        println!(
            "{:>16} {:>34} {:>34} {:>34}",
            "", "deliv/pred / lat / p99", "deliv/pred / lat / p99", "deliv/pred / lat / p99"
        );
    }

    for (label, publish_round, shape) in row_specs {
        let mut curves: Vec<Curve> = Vec::new();
        for (name, membership) in providers {
            let builder = Scenario::builder()
                .group(arity, depth)
                .matching_rate(0.5)
                .loss(0.01)
                .crash_fraction(0.001)
                .membership(membership)
                .publish_at(
                    publish_round,
                    Publisher::Interested,
                    Event::builder(1).int("b", 1).build(),
                )
                .trials(trials)
                .seed(42);
            let scenario = shape(builder).build();
            let prediction = predict(&scenario);
            let outcomes = scenario.run_parallel(Protocol::Pmcast);
            let delivery = outcomes.iter().map(|o| o.report.delivery_ratio()).sum::<f64>()
                / outcomes.len() as f64;
            // Fault-axis rows are out of the model's domain and only
            // reported; the baseline rows are gated.
            if let Some(gate) = gate.as_mut() {
                gate.record(&format!("adversarial_sweep {label} {name}"), &prediction, delivery);
            }
            // Merge the per-trial histograms into one distribution per
            // provider (same event shape across trials).
            let mut latency = outcomes[0].latency[0].clone();
            for outcome in &outcomes[1..] {
                latency.merge(&outcome.latency[0]);
            }
            curves.push(Curve {
                name,
                delivery,
                latency,
                prediction,
            });
        }
        if json {
            let fields: Vec<String> = curves
                .iter()
                .map(|c| {
                    let counts: Vec<String> =
                        c.latency.counts.iter().map(|v| v.to_string()).collect();
                    format!(
                        "\"{}\":{:.4},\"{}_predicted\":{:.4},\"{}_in_domain\":{},\
                         \"{}_lat_mean\":{:.3},\"{}_lat_p99\":{},\"{}_latency\":[{}]",
                        c.name,
                        c.delivery,
                        c.name,
                        c.prediction.reliability,
                        c.name,
                        c.prediction.in_domain,
                        c.name,
                        c.latency.mean(),
                        c.name,
                        c.latency.quantile(0.99),
                        c.name,
                        counts.join(",")
                    )
                })
                .collect();
            println!(
                "{{\"workload\":\"{label}\",\"n\":{n},\"publish_round\":{publish_round},\
                 \"entries\":{delegate_entries},{}}}",
                fields.join(",")
            );
        } else {
            print!("{label:>16}");
            for c in &curves {
                let cell = format!(
                    "{:.3}/{} / {:.2} / {}",
                    c.delivery,
                    c.prediction.display(),
                    c.latency.mean(),
                    c.latency.quantile(0.99)
                );
                print!(" {cell:>34}");
            }
            println!();
        }
    }

    if !json {
        println!(
            "\n(deliv = mean delivery ratio to interested processes; lat = mean rounds from \
             publish to delivery; p99 = 99th-percentile latency.  partition rows split the group \
             in two cells for rounds 0-6; partition-heal and combined publish at round 8, after \
             the heal, so they measure provider *recovery* from the outage.  delegate = \
             maintained Section 2 view tables; flat = same-size lpbcast views.)"
        );
    }
    if let Some(gate) = gate {
        eprintln!("{}", gate.summary());
        if let Err(drift) = gate.verdict() {
            eprintln!("{drift}");
            std::process::exit(1);
        }
    }
}
