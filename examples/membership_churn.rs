//! Membership maintenance under churn: joins, graceful leaves, crash
//! suspicion and gossip-pull anti-entropy (Section 2.3 of the paper).
//!
//! The example keeps a small group of processes, each holding its own view
//! table, and shows how local membership events propagate to every replica
//! through pairwise view exchanges.
//!
//! ```text
//! cargo run --example membership_churn
//! ```

use std::error::Error;

use pmcast::membership::{MembershipManager, ViewExchange};
use pmcast::{Address, AddressSpace, Filter, GroupTree, Predicate, TreeTopology};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let space = AddressSpace::regular(2, 4)?;

    // 1. Bootstrap: 12 of the 16 possible addresses are initially populated.
    let mut bootstrap = GroupTree::new(space.clone());
    for address in space.iter().take(12) {
        bootstrap.join(address, Filter::new().with("b", Predicate::gt(0.0)))?;
    }
    println!("bootstrap group has {} members", bootstrap.member_count());

    // 2. Every member builds its local view table and wraps it in a
    //    membership manager (R = 2, failure timeout of 3 gossip periods).
    let redundancy = 2;
    let mut managers: Vec<MembershipManager> = bootstrap
        .members()
        .iter()
        .map(|address| {
            let table = bootstrap.view_table_for(address, redundancy).expect("member");
            MembershipManager::new(table, redundancy, 3)
        })
        .collect();
    println!(
        "each member knows {} processes (flat membership would need {})\n",
        managers[0].table().knowledge_size(),
        bootstrap.member_count()
    );

    // 3. A new process joins through a contact: the contact applies the join
    //    locally, then anti-entropy spreads it.
    let joiner: Address = "3.2".parse()?;
    println!("process {joiner} joins via contact {}", managers[0].table().owner());
    managers[0].apply_join(joiner.clone(), Filter::new().with("b", Predicate::lt(0.0)));

    // 4. A member leaves gracefully, informing one close neighbour.
    let leaver: Address = "0.1".parse()?;
    println!("process {leaver} leaves, informing {}", managers[1].table().owner());
    managers[1].apply_leave(&leaver);

    // 5. Gossip-pull anti-entropy: random pairwise exchanges until no view
    //    changes any more.
    let exchange = ViewExchange::new();
    let mut sweep = 0;
    loop {
        sweep += 1;
        let mut changed = 0;
        let mut order: Vec<usize> = (0..managers.len()).collect();
        order.shuffle(&mut rng);
        for pair in order.chunks(2) {
            if let [a, b] = *pair {
                let (low, high) = if a < b { (a, b) } else { (b, a) };
                let (left, right) = managers.split_at_mut(high);
                let (da, db) = exchange.reconcile(left[low].table_mut(), right[0].table_mut());
                changed += da + db;
            }
        }
        println!("anti-entropy sweep {sweep}: {changed} view lines updated");
        if changed == 0 || sweep > 20 {
            break;
        }
    }

    // 6. Check convergence: every replica that tracks the root view agrees
    //    on the join being visible and shows updated process counts.
    let knows_joiner = managers
        .iter()
        .filter(|m| {
            m.table()
                .view(1)
                .entry(joiner.components()[0])
                .map(|entry| entry.delegates().contains(&joiner) || entry.process_count() > 0)
                .unwrap_or(false)
        })
        .count();
    println!("\n{knows_joiner}/{} replicas see the new subgroup of {joiner}", managers.len());

    // 7. Failure detection: silence a neighbour and watch it get suspected.
    println!("\nsimulating silence of 0.2 towards 0.0 …");
    let observer = &mut managers[0];
    let mut suspected = Vec::new();
    for _ in 0..6 {
        // Everybody except 0.2 keeps talking to the observer.
        for neighbour in ["0.1", "0.3"] {
            observer.record_contact(&neighbour.parse()?);
        }
        suspected.extend(observer.tick());
    }
    for event in &suspected {
        println!("membership event at {}: {:?}", observer.table().owner(), event);
    }
    Ok(())
}
