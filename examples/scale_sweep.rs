//! Scalability: seconds per trial from n = 512 to n ≈ 1.05 **million** —
//! the figure the paper could not draw (its evaluation tops out at
//! n = 22³ = 10 648).
//!
//! Every row runs one-publication pmcast trials (matching rate 0.5, 1%
//! loss, publisher drawn from the interested set) at a given group size
//! and membership provider, and reports
//!
//! * **s/trial** — wall-clock seconds per trial, single-core (build +
//!   dissemination to quiescence), and
//! * **peakMB** — the process's peak resident set so far (`VmHWM` from
//!   `/proc/self/status`; 0 where unavailable).  Rows run in increasing
//!   size order, so each row's value bounds that row's working set.
//!
//! The million-process row exists because of the active-set simulation
//! core: a round costs O(gossiping processes), not O(n), and quiescence
//! detection is O(1), so the dissemination cost tracks the message count
//! the analysis predicts instead of the group size.  The delegate column
//! reaches that row too: the eager provider's bootstrap materializes
//! per-process view tables (O(n·a·d) entries), so above 100k processes
//! the sweep switches to the lazy provider, which seats a process's
//! delegate slots on first contact and therefore only pays for the
//! processes the dissemination actually touches.
//!
//! ```text
//! cargo run --release --example scale_sweep             # 512 and 10 648
//! cargo run --release --example scale_sweep -- --quick  # 512 only (CI smoke)
//! cargo run --release --example scale_sweep -- --paper  # adds n = 32⁴ ≈ 1.05M
//! cargo run --release --example scale_sweep -- --json   # machine-readable lines
//! cargo run --release --example scale_sweep -- --check-model 0.05
//! ```
//!
//! Every row also carries the analytical prediction
//! (`pmcast_sim::prediction`) — including the million-process row, where
//! the model costs microseconds while the trial costs seconds — and
//! `--check-model <tol>` exits nonzero when a row drifts beyond the
//! tolerance.

use std::time::Instant;

use pmcast::{parse_check_model, predict, Event, MembershipSpec, Protocol, Publisher, Scenario};

/// Peak resident set size of this process in MiB (`VmHWM`), or 0.0 when
/// `/proc/self/status` is unavailable (non-Linux hosts).
fn peak_rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<f64>().ok())
        })
        .map(|kb| kb / 1024.0)
        .unwrap_or(0.0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut gate, args) = parse_check_model(&args);
    let quick = args.iter().any(|arg| arg == "--quick");
    let paper = args.iter().any(|arg| arg == "--paper");
    let json = args.iter().any(|arg| arg == "--json");

    // (arity, depth, trials, run the delegate provider too?).  The sizes
    // grow by ~100× per step; the eager delegate bootstrap is dense (its
    // table construction visits every process per process), so past 100k
    // processes the delegate column switches to the lazy first-contact
    // provider below.
    let mut sizes: Vec<(u32, usize, usize, bool)> = vec![(8, 3, 3, true)];
    if !quick {
        sizes.push((22, 3, 3, true));
    }
    if paper {
        sizes.push((32, 4, 1, true));
    }

    if !json {
        println!(
            "pmcast seconds-per-trial vs. group size — matching rate 0.5, 1% loss, \
             one publication, single core"
        );
        println!(
            "{:>9} {:>7} {:>10} {:>12} {:>12} {:>10} {:>10} {:>8}",
            "n", "a^d", "provider", "s/trial", "delivered", "predicted", "rounds", "peakMB"
        );
    }

    for (arity, depth, trials, with_delegate) in sizes {
        let n = (arity as usize).pow(depth as u32);
        let mut providers: Vec<(&str, MembershipSpec)> = vec![("global", MembershipSpec::Global)];
        if with_delegate {
            // The eager bootstrap is O(n·a·d) in time and memory; the lazy
            // provider seats slots on first contact, so the million-process
            // row only builds tables for the processes gossip reaches.
            providers.push(if n > 100_000 {
                ("delegate-lazy", MembershipSpec::delegate_lazy(3))
            } else {
                ("delegate", MembershipSpec::delegate(3))
            });
        }
        for (provider, membership) in providers {
            let scenario = Scenario::builder()
                .group(arity, depth)
                .matching_rate(0.5)
                .loss(0.01)
                .membership(membership)
                .publish(Publisher::Interested, Event::builder(1).int("b", 1).build())
                .trials(trials)
                .seed(42)
                .build();
            let prediction = predict(&scenario);
            let started = Instant::now();
            let outcomes = scenario.run(Protocol::Pmcast);
            let seconds = started.elapsed().as_secs_f64() / trials as f64;
            let delivered: f64 = outcomes.iter().map(|o| o.report.delivery_ratio()).sum::<f64>()
                / outcomes.len() as f64;
            let rounds: f64 =
                outcomes.iter().map(|o| o.rounds as f64).sum::<f64>() / outcomes.len() as f64;
            let peak = peak_rss_mb();
            if let Some(gate) = gate.as_mut() {
                gate.record(&format!("scale_sweep n={n} {provider}"), &prediction, delivered);
            }
            if json {
                println!(
                    "{{\"n\":{n},\"arity\":{arity},\"depth\":{depth},\"provider\":\"{provider}\",\
                     \"seconds_per_trial\":{seconds:.3},\"delivery_ratio\":{delivered:.4},\
                     \"rounds\":{rounds:.1},\"peak_rss_mb\":{peak:.1},\"trials\":{trials},{}}}",
                    prediction.json_fields()
                );
            } else {
                println!(
                    "{n:>9} {:>7} {provider:>10} {seconds:>12.3} {delivered:>12.3} {:>10} {rounds:>10.1} {peak:>8.0}",
                    format!("{arity}^{depth}"),
                    prediction.display()
                );
            }
        }
    }

    if !json {
        println!(
            "\n(s/trial includes group construction and the full dissemination to quiescence.  \
             The 32^4 row is the active-set core's contribution: rounds cost O(active), \
             quiescence is O(1), and delivery tracking is delta-driven, so a million-process \
             trial stays in single-digit seconds on one core.  delegate = the paper's \
             Section 2 view tables; past 100k processes the column switches to the lazy \
             provider, whose first-contact bootstrap only seats the views gossip touches.)"
        );
    }
    if let Some(gate) = gate {
        eprintln!("{}", gate.summary());
        if let Err(drift) = gate.verdict() {
            eprintln!("{drift}");
            std::process::exit(1);
        }
    }
}
