//! Content-based publish/subscribe: a stock-ticker feed disseminated with
//! pmcast.
//!
//! Every process subscribes with a real attribute filter ("trades of NESN
//! or ROG above 120.0", in the style of the paper's Figure 2); the exchange
//! publishes a stream of trade events and pmcast routes each of them only
//! towards the subtrees containing matching subscribers.
//!
//! ```text
//! cargo run --example pubsub_stock_ticker
//! ```

use std::error::Error;
use std::sync::Arc;

use pmcast::sim::workload::{ticker_event, ticker_subscription};
use pmcast::{
    AddressSpace, Event, GlobalOracleView, GroupTree, Interest, MulticastReport, NetworkConfig,
    PmcastConfig, PmcastFactory, ProcessId, ProtocolFactory, Simulation, TreeTopology,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(2026);

    // 1. Build an explicit membership: 125 brokers in a depth-3 tree, each
    //    with its own content-based subscription.
    let space = AddressSpace::regular(3, 5)?;
    let mut tree = GroupTree::new(space.clone());
    for address in space.iter() {
        tree.join(address, ticker_subscription(&mut rng))?;
    }
    let tree = Arc::new(tree);
    println!("{} brokers joined the feed", tree.member_count());

    // A look at one broker's view table (the Figure 2 structure).
    let sample_broker: pmcast::Address = "2.3.1".parse()?;
    let table = tree.view_table_for(&sample_broker, 3)?;
    println!(
        "broker {sample_broker} knows {} processes across {} depths (flat membership would need {})\n",
        table.knowledge_size(),
        table.depth(),
        tree.member_count()
    );

    // 2. Build the pmcast group; the GroupTree doubles as the interest
    //    oracle since it holds every subscription.
    let config = PmcastConfig::default().with_fanout(3);
    let membership = Arc::new(GlobalOracleView::new(tree.member_count()));
    let group = PmcastFactory::build(tree.as_ref(), tree.clone(), membership, &config);
    let mut sim = Simulation::new(
        group.processes,
        NetworkConfig::default().with_loss(0.01).with_seed(11),
    );

    // 3. Publish a burst of trades from random brokers.
    let trades: Vec<Event> = (0..5).map(|i| ticker_event(i, &mut rng)).collect();
    for trade in &trades {
        let publisher = ProcessId(rng.gen_range(0..tree.member_count()));
        sim.process_mut(publisher).pmcast(trade.clone());
        println!("published {trade}");
    }
    let rounds = sim.run_until_quiescent(400);
    println!("\nfeed quiescent after {rounds} rounds, {} messages\n", sim.stats().messages_sent);

    // 4. Per-trade delivery report.
    for trade in &trades {
        let report = MulticastReport::collect(trade, sim.processes(), tree.as_ref());
        println!(
            "trade {:>3}: {:3} subscribers, {:3} delivered ({:.2}), {:3} non-subscribers received ({:.2})",
            trade.id().to_string(),
            report.interested,
            report.delivered_interested,
            report.delivery_ratio(),
            report.received_uninterested,
            report.spurious_ratio()
        );
        // Sanity: nobody delivered a trade their filter rejects.
        for process in sim.processes() {
            if process.has_delivered(trade.id()) {
                let filter = tree.subscription(process.address()).expect("member");
                assert!(filter.matches(trade), "spurious delivery at {}", process.address());
            }
        }
    }
    Ok(())
}
