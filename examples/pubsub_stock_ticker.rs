//! Content-based publish/subscribe: a stock-ticker feed disseminated with
//! pmcast.
//!
//! Every process subscribes with a real attribute filter ("trades of NESN
//! or ROG above 120.0", in the style of the paper's Figure 2); the exchange
//! publishes a stream of trade events and pmcast routes each of them only
//! towards the subtrees containing matching subscribers.
//!
//! Two modes:
//!
//! ```text
//! cargo run --example pubsub_stock_ticker              # one-shot simulator burst
//! cargo run --example pubsub_stock_ticker -- --daemon  # long-running pmcast-net feed
//! ```
//!
//! `--daemon` runs the same group as long-lived broker tasks on the
//! `pmcast-net` async runtime: a sustained publish loop paces trades into
//! the group through bounded mailboxes (publishers wait under
//! backpressure; gossip overflow drops with a counter), until `--trades N`
//! (default 2000) have been served or Ctrl-C asks for a graceful
//! shutdown.  It ends with an events/sec summary line.

use std::error::Error;
use std::sync::Arc;

use pmcast::sim::workload::{ticker_event, ticker_subscription};
use pmcast::{
    AddressSpace, Event, GlobalOracleView, GroupTree, Interest, MulticastReport, NetworkConfig,
    PmcastConfig, PmcastFactory, ProcessId, ProtocolFactory, Simulation, TreeTopology,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Cooperative Ctrl-C: the handler flips a flag the daemon's publish loop
/// polls between trades, so teardown always goes through the graceful
/// `NetGroup::shutdown` path.
mod ctrl_c {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    pub fn requested() -> bool {
        STOP.load(Ordering::Relaxed)
    }

    #[cfg(unix)]
    pub fn install() {
        const SIGINT: i32 = 2;
        extern "C" fn on_sigint(_signum: i32) {
            STOP.store(true, Ordering::Relaxed);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut daemon = false;
    let mut trades: u64 = 2000;
    let mut period_us: u64 = 200;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--daemon" => daemon = true,
            "--trades" => trades = args.next().and_then(|v| v.parse().ok()).unwrap_or(trades),
            "--period-us" => {
                period_us = args.next().and_then(|v| v.parse().ok()).unwrap_or(period_us)
            }
            other => {
                eprintln!("unknown argument {other}; usage: [--daemon] [--trades N] [--period-us N]");
                std::process::exit(2);
            }
        }
    }
    if daemon {
        run_daemon(trades, period_us)
    } else {
        run_simulated_burst()
    }
}

/// Builds the 125-broker group with per-process ticker subscriptions; the
/// [`GroupTree`] doubles as the interest oracle.
fn build_feed(rng: &mut ChaCha8Rng) -> Result<Arc<GroupTree>, Box<dyn Error>> {
    let space = AddressSpace::regular(3, 5)?;
    let mut tree = GroupTree::new(space.clone());
    for address in space.iter() {
        tree.join(address, ticker_subscription(rng))?;
    }
    Ok(Arc::new(tree))
}

/// The original one-shot mode: a burst of trades through the
/// round-synchronous simulator.
fn run_simulated_burst() -> Result<(), Box<dyn Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(2026);

    // 1. Build an explicit membership: 125 brokers in a depth-3 tree, each
    //    with its own content-based subscription.
    let tree = build_feed(&mut rng)?;
    println!("{} brokers joined the feed", tree.member_count());

    // A look at one broker's view table (the Figure 2 structure).
    let sample_broker: pmcast::Address = "2.3.1".parse()?;
    let table = tree.view_table_for(&sample_broker, 3)?;
    println!(
        "broker {sample_broker} knows {} processes across {} depths (flat membership would need {})\n",
        table.knowledge_size(),
        table.depth(),
        tree.member_count()
    );

    // 2. Build the pmcast group; the GroupTree doubles as the interest
    //    oracle since it holds every subscription.
    let config = PmcastConfig::default().with_fanout(3);
    let membership = Arc::new(GlobalOracleView::new(tree.member_count()));
    let group = PmcastFactory::build(tree.as_ref(), tree.clone(), membership, &config);
    let mut sim = Simulation::new(
        group.processes,
        NetworkConfig::default().with_loss(0.01).with_seed(11),
    );

    // 3. Publish a burst of trades from random brokers.
    let trades: Vec<Event> = (0..5).map(|i| ticker_event(i, &mut rng)).collect();
    for trade in &trades {
        let publisher = ProcessId(rng.gen_range(0..tree.member_count()));
        sim.process_mut(publisher).pmcast(trade.clone());
        println!("published {trade}");
    }
    let rounds = sim.run_until_quiescent(400);
    println!("\nfeed quiescent after {rounds} rounds, {} messages\n", sim.stats().messages_sent);

    // 4. Per-trade delivery report.
    for trade in &trades {
        let report = MulticastReport::collect(trade, sim.processes(), tree.as_ref());
        println!(
            "trade {:>3}: {:3} subscribers, {:3} delivered ({:.2}), {:3} non-subscribers received ({:.2})",
            trade.id().to_string(),
            report.interested,
            report.delivered_interested,
            report.delivery_ratio(),
            report.received_uninterested,
            report.spurious_ratio()
        );
        // Sanity: nobody delivered a trade their filter rejects.
        for process in sim.processes() {
            if process.has_delivered(trade.id()) {
                let filter = tree.subscription(process.address()).expect("member");
                assert!(filter.matches(trade), "spurious delivery at {}", process.address());
            }
        }
    }
    Ok(())
}

/// The long-running broker mode: the same feed as live `pmcast-net` tasks,
/// serving a sustained paced trade stream until `max_trades` or Ctrl-C.
fn run_daemon(max_trades: u64, period_us: u64) -> Result<(), Box<dyn Error>> {
    use std::time::{Duration, Instant};

    use pmcast::net::{NetConfig, NetGroup};
    use smol::{LocalExecutor, Timer};

    ctrl_c::install();
    let mut rng = ChaCha8Rng::seed_from_u64(2026);
    let tree = build_feed(&mut rng)?;
    let broker_count = tree.member_count();
    println!("{broker_count} brokers serving the feed as pmcast-net tasks (Ctrl-C for graceful shutdown)");

    let config = PmcastConfig::default().with_fanout(3);
    let membership = Arc::new(GlobalOracleView::new(broker_count));
    let group = PmcastFactory::build(tree.as_ref(), tree.clone(), membership.clone(), &config);
    let net_config = NetConfig::default()
        .with_gossip_period(Duration::from_millis(2))
        .with_mailbox_capacity(256)
        .with_seen_capacity(4096)
        .with_seed(11);

    // Wall clock on purpose: the daemon reports a real publish rate.
    let executor = LocalExecutor::new();
    let net = NetGroup::spawn(&executor, group.processes, membership, &net_config);
    let handle = net.handle().clone();
    let observer = handle.clone();
    let period = Duration::from_micros(period_us.max(1));
    let started = Instant::now();

    let (published, reports) = executor.run(async move {
        let mut published: u64 = 0;
        let first_deadline = smol::now();
        while published < max_trades && !ctrl_c::requested() {
            // Drift-free pacing: trade k is due at `first + k * period`.
            Timer::at(first_deadline + period * (published as u32)).await;
            let trade = Arc::new(ticker_event(published, &mut rng));
            let publisher = rng.gen_range(0..broker_count);
            if handle.publish(publisher, trade).await.is_err() {
                break;
            }
            published += 1;
        }
        // Let the last trades disseminate before tearing down.
        while !handle.is_quiescent() && !ctrl_c::requested() {
            Timer::after(Duration::from_millis(2)).await;
        }
        (published, net.shutdown().await)
    });
    let elapsed = started.elapsed();

    assert_eq!(reports.len(), broker_count, "every broker reports on shutdown");
    let (ticks, frames, deduped) = reports
        .iter()
        .fold((0u64, 0u64, 0u64), |(ticks, frames, deduped), report| {
            (
                ticks + report.stats.ticks,
                frames + report.stats.frames_handled,
                deduped + report.stats.frames_deduped,
            )
        });
    let transport = observer.stats();
    let events_per_sec = published as f64 / elapsed.as_secs_f64();
    println!(
        "served {published} trades in {:.2}s: {events_per_sec:.0} events/sec \
         ({ticks} gossip ticks, {frames} frames handled, {deduped} deduped by the Seen ring)",
        elapsed.as_secs_f64(),
    );
    println!(
        "transport: {} frames sent, {} dropped at full mailboxes, peak {} in flight",
        transport.frames_sent, transport.frames_dropped, transport.peak_in_flight
    );
    Ok(())
}
