//! A miniature Figure 4: sweep the fraction of interested processes and
//! print, for every matching rate, the simulated delivery probability next
//! to the analytical prediction of Section 4.
//!
//! The `predicted` column is the scenario-level closed loop
//! (`pmcast_sim::prediction::predict` over the same experiment point);
//! `--check-model <tol>` exits nonzero when any rate drifts beyond the
//! tolerance.
//!
//! ```text
//! cargo run --release --example reliability_sweep          # quick (n = 216)
//! cargo run --release --example reliability_sweep -- paper # n = 10 648, slower
//! cargo run --release --example reliability_sweep -- --json
//! cargo run --release --example reliability_sweep -- --check-model 0.08
//! ```

use std::error::Error;

use pmcast::analysis::tree::TreeModel;
use pmcast::sim::experiments::{reliability, Profile};
use pmcast::{parse_check_model, predict, EnvParams, GroupParams, Scenario};

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut gate, args) = parse_check_model(&args);
    let paper_scale = args.iter().any(|a| a == "paper" || a == "--paper");
    let json = args.iter().any(|a| a == "--json");
    let profile = if paper_scale { Profile::Paper } else { Profile::Quick };
    if !json {
        println!(
            "running the Figure 4 sweep with the {} profile…\n",
            if paper_scale { "paper (n = 10 648)" } else { "quick (n = 216)" }
        );
    }

    let rows = reliability::run(profile);
    if !json {
        println!(
            "{:>14} {:>20} {:>12} {:>22} {:>10} {:>8}",
            "matching rate", "delivery (simulated)", "std dev", "delivery (analytical)", "predicted", "rounds"
        );
    }
    let base = profile.reliability_base();
    for row in &rows {
        // The same experiment point, as the scenario the prediction module
        // maps onto the model — `delivery_analytical` is the legacy
        // tree-model column, `predicted` the scenario-level loop.
        let scenario =
            Scenario::from_experiment(&base.clone().with_matching_rate(row.matching_rate));
        let prediction = predict(&scenario);
        if let Some(gate) = gate.as_mut() {
            gate.record(
                &format!("reliability_sweep p_d={}", row.matching_rate),
                &prediction,
                row.delivery_simulated,
            );
        }
        if json {
            println!(
                "{{\"matching_rate\":{},\"delivery_simulated\":{:.4},\"delivery_std\":{:.4},\
                 \"delivery_analytical\":{:.4},\"rounds\":{:.1},{}}}",
                row.matching_rate,
                row.delivery_simulated,
                row.delivery_std,
                row.delivery_analytical,
                row.rounds,
                prediction.json_fields()
            );
        } else {
            println!(
                "{:>14.2} {:>20.4} {:>12.4} {:>22.4} {:>10} {:>8.1}",
                row.matching_rate,
                row.delivery_simulated,
                row.delivery_std,
                row.delivery_analytical,
                prediction.display(),
                row.rounds
            );
        }
    }

    // The analytical model also covers configurations we did not simulate;
    // show the predicted effect of a larger fanout.
    if !json {
        let base = if paper_scale {
            GroupParams { arity: 22, depth: 3, redundancy: 3, fanout: 2 }
        } else {
            GroupParams { arity: 6, depth: 3, redundancy: 3, fanout: 2 }
        };
        println!("\nanalytical what-if: delivery at p_d = 0.2 as the fanout grows");
        for fanout in [1, 2, 3, 4, 5] {
            let model = TreeModel::new(GroupParams { fanout, ..base }, EnvParams::default());
            let report = model.reliability(0.2);
            println!(
                "  F = {fanout}: reliability degree {:.4}, {} total rounds",
                report.reliability_degree, report.total_rounds
            );
        }
    }
    if let Some(gate) = gate {
        eprintln!("{}", gate.summary());
        if let Err(drift) = gate.verdict() {
            eprintln!("{drift}");
            std::process::exit(1);
        }
    }
    Ok(())
}
