//! A miniature Figure 4: sweep the fraction of interested processes and
//! print, for every matching rate, the simulated delivery probability next
//! to the analytical prediction of Section 4.
//!
//! ```text
//! cargo run --release --example reliability_sweep          # quick (n = 216)
//! cargo run --release --example reliability_sweep -- paper # n = 10 648, slower
//! ```

use std::error::Error;

use pmcast::analysis::tree::TreeModel;
use pmcast::sim::experiments::{reliability, Profile};
use pmcast::{EnvParams, GroupParams};

fn main() -> Result<(), Box<dyn Error>> {
    let paper_scale = std::env::args().any(|a| a == "paper" || a == "--paper");
    let profile = if paper_scale { Profile::Paper } else { Profile::Quick };
    println!(
        "running the Figure 4 sweep with the {} profile…\n",
        if paper_scale { "paper (n = 10 648)" } else { "quick (n = 216)" }
    );

    let rows = reliability::run(profile);
    println!(
        "{:>14} {:>20} {:>12} {:>22} {:>8}",
        "matching rate", "delivery (simulated)", "std dev", "delivery (analytical)", "rounds"
    );
    for row in &rows {
        println!(
            "{:>14.2} {:>20.4} {:>12.4} {:>22.4} {:>8.1}",
            row.matching_rate,
            row.delivery_simulated,
            row.delivery_std,
            row.delivery_analytical,
            row.rounds
        );
    }

    // The analytical model also covers configurations we did not simulate;
    // show the predicted effect of a larger fanout.
    let base = if paper_scale {
        GroupParams { arity: 22, depth: 3, redundancy: 3, fanout: 2 }
    } else {
        GroupParams { arity: 6, depth: 3, redundancy: 3, fanout: 2 }
    };
    println!("\nanalytical what-if: delivery at p_d = 0.2 as the fanout grows");
    for fanout in [1, 2, 3, 4, 5] {
        let model = TreeModel::new(GroupParams { fanout, ..base }, EnvParams::default());
        let report = model.reliability(0.2);
        println!(
            "  F = {fanout}: reliability degree {:.4}, {} total rounds",
            report.reliability_degree, report.total_rounds
        );
    }
    Ok(())
}
