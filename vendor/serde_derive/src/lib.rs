//! Offline stand-in for `serde_derive`.
//!
//! Derives the value-tree `Serialize` / `Deserialize` traits of the vendored
//! `serde` crate for plain (non-generic) structs and enums, following serde's
//! JSON conventions: named structs become objects, newtype structs are
//! transparent, tuple structs become arrays, and enums are externally tagged.
//! The parser walks raw token trees (no `syn`/`quote` available offline), so
//! it intentionally supports only the shapes this workspace uses and panics
//! with a clear message on anything else (generics, discriminants, …).
//!
//! One field attribute is honoured: `#[serde(default)]` on a named struct
//! field makes deserialization fall back to `Default::default()` when the
//! field is absent from the input object — the forward-compatibility hook
//! for configs serialized before the field existed.  All other `#[serde]`
//! attributes are rejected so silently unsupported behaviour cannot creep
//! in.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A named struct field: its identifier plus whether `#[serde(default)]`
/// lets it fall back when missing from the input.
struct Field {
    name: String,
    default: bool,
}

/// A parsed `struct` or `enum` definition.
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at the
/// cursor position.
fn skip_decoration(tokens: &[TokenTree], mut index: usize) -> usize {
    loop {
        match tokens.get(index) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]`: the bracket group follows immediately.
                index += 2;
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                index += 1;
                if let Some(TokenTree::Group(group)) = tokens.get(index) {
                    if group.delimiter() == Delimiter::Parenthesis {
                        index += 1;
                    }
                }
            }
            _ => return index,
        }
    }
}

/// Splits a token sequence on top-level commas, tracking `<...>` nesting
/// manually (parens/brackets/braces arrive pre-grouped).
fn split_on_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("non-empty").push(token);
    }
    if chunks.last().map(Vec::is_empty).unwrap_or(false) {
        chunks.pop(); // trailing comma
    }
    chunks
}

/// Skips attributes and visibility like [`skip_decoration`], additionally
/// reporting whether a `#[serde(default)]` attribute was among them.
fn skip_field_decoration(tokens: &[TokenTree], mut index: usize) -> (usize, bool) {
    let mut default = false;
    loop {
        match tokens.get(index) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(group)) = tokens.get(index + 1) {
                    default |= parse_serde_attr(group.stream());
                }
                index += 2;
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                index += 1;
                if let Some(TokenTree::Group(group)) = tokens.get(index) {
                    if group.delimiter() == Delimiter::Parenthesis {
                        index += 1;
                    }
                }
            }
            _ => return (index, default),
        }
    }
}

/// Returns `true` for a `serde(default)` attribute body; panics on any
/// other `serde(...)` content (unsupported by the shim); returns `false`
/// for non-serde attributes (doc comments and the like).
fn parse_serde_attr(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(ident)) if ident.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.get(1) {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            match inner.first() {
                Some(TokenTree::Ident(ident))
                    if ident.to_string() == "default" && inner.len() == 1 =>
                {
                    true
                }
                other => panic!(
                    "serde derive: only `#[serde(default)]` is supported, found {other:?}"
                ),
            }
        }
        other => panic!("serde derive: unsupported serde attribute shape: {other:?}"),
    }
}

/// Extracts the fields of a named-fields body (`{ a: T, b: U }`).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_on_commas(stream)
        .into_iter()
        .map(|chunk| {
            let (index, default) = skip_field_decoration(&chunk, 0);
            match chunk.get(index) {
                Some(TokenTree::Ident(ident)) => Field {
                    name: ident.to_string(),
                    default,
                },
                other => panic!("serde derive: expected field name, found {other:?}"),
            }
        })
        .collect()
}

/// Counts the fields of a tuple body (`(T, U)`).
fn count_tuple_fields(stream: TokenStream) -> usize {
    split_on_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut index = 0;
    while index < tokens.len() {
        index = skip_decoration(&tokens, index);
        let Some(TokenTree::Ident(ident)) = tokens.get(index) else {
            break;
        };
        let name = ident.to_string();
        index += 1;
        let kind = match tokens.get(index) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                index += 1;
                VariantKind::Tuple(count_tuple_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                index += 1;
                VariantKind::Struct(parse_named_fields(group.stream()))
            }
            _ => VariantKind::Unit,
        };
        match tokens.get(index) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => index += 1,
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde derive: explicit discriminants are not supported")
            }
            other => panic!("serde derive: unexpected token after variant: {other:?}"),
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut index = skip_decoration(&tokens, 0);
    let keyword = match tokens.get(index) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    index += 1;
    let name = match tokens.get(index) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    index += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(index) {
        if p.as_char() == '<' {
            panic!("serde derive: generic types are not supported by the offline shim");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(index) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Item::NamedStruct {
                    name,
                    fields: parse_named_fields(group.stream()),
                }
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(group.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde derive: unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(index) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(group.stream()),
            },
            other => panic!("serde derive: unsupported enum body: {other:?}"),
        },
        other => panic!("serde derive: expected `struct` or `enum`, found `{other}`"),
    }
}

fn bindings(count: usize) -> Vec<String> {
    (0..count).map(|i| format!("__f{i}")).collect()
}

/// `#[derive(Serialize)]`
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { fields, .. } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|field| {
                    let f = &field.name;
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Item::TupleStruct { arity: 1, .. } => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Item::TupleStruct { arity, .. } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", entries.join(", "))
        }
        Item::UnitStruct { .. } => "::serde::Value::Null".to_string(),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|variant| {
                    let v = &variant.name;
                    match &variant.kind {
                        VariantKind::Unit => format!(
                            "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{v}(__f0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds = bindings(*arity);
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|field| {
                                    let f = &field.name;
                                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            let binds: Vec<String> =
                                fields.iter().map(|field| field.name.clone()).collect();
                            format!(
                                "{name}::{v} {{ {} }} => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    let name = match &item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Deserialization of one named field: a required field errors when
/// missing, a `#[serde(default)]` field falls back to `Default::default()`.
fn named_field_entry(field: &Field, owner: &str) -> String {
    let f = &field.name;
    if field.default {
        format!(
            "{f}: match ::serde::struct_field(__fields, \"{f}\", \"{owner}\") {{\n\
                 ::std::result::Result::Ok(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                 ::std::result::Result::Err(_) => ::std::default::Default::default(),\n\
             }},"
        )
    } else {
        format!(
            "{f}: ::serde::Deserialize::from_value(::serde::struct_field(__fields, \"{f}\", \"{owner}\")?)?,"
        )
    }
}

/// `#[derive(Deserialize)]`
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = match &item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name.clone(),
    };
    let body = match &item {
        Item::NamedStruct { fields, .. } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|field| named_field_entry(field, &name))
                .collect();
            format!(
                "let __fields = value.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for `{name}`\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                entries.join("\n")
            )
        }
        Item::TupleStruct { arity: 1, .. } => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
        ),
        Item::TupleStruct { arity, .. } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {arity} =>\n\
                         ::std::result::Result::Ok({name}({})),\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\"expected {arity}-element array for `{name}`\")),\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::UnitStruct { .. } => format!("::std::result::Result::Ok({name})"),
        Item::Enum { variants, .. } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),",
                        v = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|variant| {
                    let v = &variant.name;
                    match &variant.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(arity) => {
                            let entries: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{v}\" => match __inner {{\n\
                                     ::serde::Value::Array(__items) if __items.len() == {arity} =>\n\
                                         ::std::result::Result::Ok({name}::{v}({})),\n\
                                     _ => ::std::result::Result::Err(::serde::Error::custom(\"expected {arity}-element array for `{name}::{v}`\")),\n\
                                 }},",
                                entries.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|field| {
                                    let f = &field.name;
                                    if field.default {
                                        format!(
                                            "{f}: match ::serde::struct_field(__vfields, \"{f}\", \"{name}::{v}\") {{\n\
                                                 ::std::result::Result::Ok(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                                                 ::std::result::Result::Err(_) => ::std::default::Default::default(),\n\
                                             }},"
                                        )
                                    } else {
                                        format!(
                                            "{f}: ::serde::Deserialize::from_value(::serde::struct_field(__vfields, \"{f}\", \"{name}::{v}\")?)?,"
                                        )
                                    }
                                })
                                .collect();
                            Some(format!(
                                "\"{v}\" => {{\n\
                                     let __vfields = __inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for `{name}::{v}`\"))?;\n\
                                     ::std::result::Result::Ok({name}::{v} {{ {} }})\n\
                                 }},",
                                entries.join("\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __inner) = &__fields[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                         }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\"expected enum representation for `{name}`\")),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
