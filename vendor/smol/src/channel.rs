//! Async MPSC channels with bounded capacity and backpressure, mirroring
//! the `smol::channel` (async-channel) API surface the workspace uses.
//!
//! Deviation from the real crate: the shim is **single-consumer** — the
//! [`Receiver`] is not `Clone`, and only one `recv` may be pending at a
//! time (a second concurrent `recv` on the same channel would overwrite
//! the first one's waker).  `pmcast-net` gives every process exactly one
//! mailbox consumer, so this is all the workspace needs.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex, MutexGuard};
use std::task::{Context, Poll, Waker};

struct Inner<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
    recv_waker: Option<Waker>,
    send_wakers: Vec<Waker>,
}

impl<T> Inner<T> {
    fn wake_receiver(&mut self) {
        if let Some(waker) = self.recv_waker.take() {
            waker.wake();
        }
    }

    fn wake_senders(&mut self) {
        for waker in self.send_wakers.drain(..) {
            waker.wake();
        }
    }
}

fn lock<T>(inner: &Arc<Mutex<Inner<T>>>) -> MutexGuard<'_, Inner<T>> {
    inner.lock().expect("channel poisoned")
}

/// Creates a bounded channel: `send` waits while `capacity` messages are
/// queued (backpressure), `try_send` fails fast with [`TrySendError::Full`].
///
/// # Panics
///
/// Panics if `capacity` is zero (rendezvous channels are not supported).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel capacity must be at least 1");
    let inner = Arc::new(Mutex::new(Inner {
        queue: VecDeque::with_capacity(capacity.min(1024)),
        capacity,
        senders: 1,
        receiver_alive: true,
        recv_waker: None,
        send_wakers: Vec::new(),
    }));
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

/// Creates an unbounded channel: `send` never waits.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (sender, receiver) = bounded(1);
    lock(&sender.inner).capacity = usize::MAX;
    (sender, receiver)
}

/// The sending half of a channel; cloneable (multi-producer).
pub struct Sender<T> {
    inner: Arc<Mutex<Inner<T>>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock(&self.inner);
        f.debug_struct("Sender")
            .field("len", &inner.queue.len())
            .field("capacity", &inner.capacity)
            .finish()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.inner).senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = lock(&self.inner);
        inner.senders -= 1;
        if inner.senders == 0 {
            // The receiver's pending recv must observe the closure.
            inner.wake_receiver();
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message, waiting while the channel is full.  Fails only
    /// when the receiver has been dropped.
    pub fn send(&self, message: T) -> SendFuture<'_, T> {
        SendFuture {
            inner: &self.inner,
            message: Some(message),
        }
    }

    /// Sends without waiting; fails with the message when the channel is
    /// full or the receiver has been dropped.
    pub fn try_send(&self, message: T) -> Result<(), TrySendError<T>> {
        let mut inner = lock(&self.inner);
        if !inner.receiver_alive {
            return Err(TrySendError::Closed(message));
        }
        if inner.queue.len() >= inner.capacity {
            return Err(TrySendError::Full(message));
        }
        inner.queue.push_back(message);
        inner.wake_receiver();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.inner).queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The future returned by [`Sender::send`].
pub struct SendFuture<'a, T> {
    inner: &'a Arc<Mutex<Inner<T>>>,
    message: Option<T>,
}

impl<T> std::fmt::Debug for SendFuture<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SendFuture")
            .field("queued", &self.message.is_none())
            .finish()
    }
}

impl<T: Unpin> Future for SendFuture<'_, T> {
    type Output = Result<(), SendError<T>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut inner = lock(this.inner);
        let message = this
            .message
            .take()
            .expect("SendFuture polled after completion");
        if !inner.receiver_alive {
            return Poll::Ready(Err(SendError(message)));
        }
        if inner.queue.len() < inner.capacity {
            inner.queue.push_back(message);
            inner.wake_receiver();
            return Poll::Ready(Ok(()));
        }
        this.message = Some(message);
        inner.send_wakers.push(cx.waker().clone());
        Poll::Pending
    }
}

/// The receiving half of a channel; single-consumer (see module docs).
pub struct Receiver<T> {
    inner: Arc<Mutex<Inner<T>>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock(&self.inner);
        f.debug_struct("Receiver")
            .field("len", &inner.queue.len())
            .field("capacity", &inner.capacity)
            .finish()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = lock(&self.inner);
        inner.receiver_alive = false;
        // Pending senders must observe the closure.
        inner.wake_senders();
    }
}

impl<T> Receiver<T> {
    /// Receives the next message, waiting while the channel is empty.
    /// Fails only when every sender has been dropped and the queue is
    /// drained.
    pub fn recv(&self) -> RecvFuture<'_, T> {
        RecvFuture { inner: &self.inner }
    }

    /// Receives without waiting.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = lock(&self.inner);
        match inner.queue.pop_front() {
            Some(message) => {
                inner.wake_senders();
                Ok(message)
            }
            None if inner.senders == 0 => Err(TryRecvError::Closed),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.inner).queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The future returned by [`Receiver::recv`].
pub struct RecvFuture<'a, T> {
    inner: &'a Arc<Mutex<Inner<T>>>,
}

impl<T> std::fmt::Debug for RecvFuture<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecvFuture").finish()
    }
}

impl<T> Future for RecvFuture<'_, T> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = lock(self.inner);
        match inner.queue.pop_front() {
            Some(message) => {
                inner.wake_senders();
                Poll::Ready(Ok(message))
            }
            None if inner.senders == 0 => Poll::Ready(Err(RecvError)),
            None => {
                inner.recv_waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// `send` failed because the receiver was dropped; carries the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending into a closed channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// `try_send` failed; carries the message back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// The receiver was dropped.
    Closed(T),
}

impl<T> TrySendError<T> {
    /// Recovers the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(message) | TrySendError::Closed(message) => message,
        }
    }
}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "channel is full"),
            TrySendError::Closed(_) => write!(f, "channel is closed"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

/// `recv` failed because every sender was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving from an empty, closed channel")
    }
}

impl std::error::Error for RecvError {}

/// `try_recv` failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// Every sender was dropped and the queue is drained.
    Closed,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel is empty"),
            TryRecvError::Closed => write!(f, "channel is closed"),
        }
    }
}

impl std::error::Error for TryRecvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LocalExecutor, Timer};
    use std::time::Duration;

    #[test]
    fn backpressure_waits_until_the_consumer_drains() {
        let executor = LocalExecutor::deterministic(5);
        let (sender, receiver) = bounded::<u64>(2);
        let consumer = executor.spawn(async move {
            let mut got = Vec::new();
            loop {
                Timer::after(Duration::from_millis(10)).await;
                match receiver.recv().await {
                    Ok(value) => got.push(value),
                    Err(RecvError) => break,
                }
            }
            got
        });
        let sent = executor.run(async move {
            for value in 0..6u64 {
                sender.send(value).await.expect("receiver alive");
            }
            drop(sender);
            consumer.await
        });
        assert_eq!(sent, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn try_send_reports_full_and_closed() {
        let (sender, receiver) = bounded::<u32>(1);
        sender.try_send(1).expect("fits");
        assert!(matches!(sender.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(receiver.try_recv(), Ok(1));
        drop(receiver);
        assert!(matches!(sender.try_send(3), Err(TrySendError::Closed(3))));
    }

    #[test]
    fn recv_observes_sender_closure() {
        let executor = LocalExecutor::deterministic(6);
        let (sender, receiver) = bounded::<u32>(4);
        sender.try_send(7).expect("fits");
        drop(sender);
        let (first, second) = executor.run(async move {
            let first = receiver.recv().await;
            let second = receiver.recv().await;
            (first, second)
        });
        assert_eq!(first, Ok(7));
        assert_eq!(second, Err(RecvError));
    }
}
