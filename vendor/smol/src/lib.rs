//! Offline stand-in for the `smol` async runtime.
//!
//! Reimplements exactly the API surface the workspace uses — a
//! single-threaded task executor ([`LocalExecutor`]), a timer future
//! ([`Timer`]) backed by a timer wheel, and async MPSC [`channel`]s with
//! bounded capacity and backpressure — with no external dependencies, so
//! the build works fully offline (see `vendor/README.md`).  The shim only
//! promises self-consistency, not behavioural equality with the real
//! crate.
//!
//! Two deliberate deviations from the real `smol`, both documented shim
//! extensions required by `pmcast-net`'s conformance story:
//!
//! 1. **Deterministic virtual time.**  [`LocalExecutor::deterministic`]
//!    runs on a *virtual clock*: when no task is runnable, the clock jumps
//!    straight to the earliest timer deadline instead of sleeping, so a
//!    simulated minute of gossip executes in milliseconds and every run
//!    with the same seed schedules identically.  [`LocalExecutor::new`]
//!    keeps a monotonic wall clock (idle waits really sleep).
//! 2. **Seeded timer ordering.**  Timers that expire at the same instant
//!    fire in an order keyed by a hash of the executor seed and the
//!    registration sequence number — deterministic, reproducible from the
//!    seed, and with no accidental reliance on registration order.
//!
//! Timestamps are [`Duration`]s since the executor was created (the real
//! crate uses [`std::time::Instant`]; a virtual clock has no meaningful
//! `Instant`, so the shim exposes the monotonic offset directly).
//!
//! Everything is single-threaded: tasks are `!Send` futures, woken through
//! the safe [`std::task::Wake`] machinery, and the executor never spawns
//! threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

pub mod channel;

/// SplitMix64: the tie-break hash for equal-deadline timers.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Task identifier; `usize::MAX` is reserved for the main future.
type TaskId = usize;
const MAIN_ID: TaskId = usize::MAX;

/// The cross-task wake queue.  `Waker` must be `Send + Sync`, so this one
/// shared piece of executor state sits behind a mutex even though the
/// executor itself is single-threaded.
#[derive(Default)]
struct WakeQueue {
    ready: Mutex<VecDeque<TaskId>>,
}

impl WakeQueue {
    fn push(&self, id: TaskId) {
        let mut ready = self.ready.lock().expect("wake queue poisoned");
        if !ready.contains(&id) {
            ready.push_back(id);
        }
    }

    fn pop(&self) -> Option<TaskId> {
        self.ready.lock().expect("wake queue poisoned").pop_front()
    }
}

struct TaskWaker {
    id: TaskId,
    queue: Arc<WakeQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.push(self.id);
    }
}

/// How the reactor advances time when every task is blocked on a timer.
enum ClockMode {
    /// Jump straight to the earliest deadline (deterministic mode).
    Virtual,
    /// Sleep on the OS clock until the earliest deadline.
    Monotonic { start: Instant },
}

/// Timer-wheel key: deadline first, then the seeded tie-break hash, then
/// the registration sequence (which guarantees uniqueness).
type TimerKey = (Duration, u64, u64);

/// The executor's timer wheel and clock.
struct Reactor {
    clock: ClockMode,
    now: Cell<Duration>,
    timers: RefCell<BTreeMap<TimerKey, Waker>>,
    timer_seq: Cell<u64>,
    seed: u64,
}

impl Reactor {
    /// Current time as an offset from executor creation.
    fn now(&self) -> Duration {
        if let ClockMode::Monotonic { start } = self.clock {
            let elapsed = start.elapsed();
            if elapsed > self.now.get() {
                self.now.set(elapsed);
            }
        }
        self.now.get()
    }

    fn register(&self, deadline: Duration, waker: Waker) -> TimerKey {
        let seq = self.timer_seq.get();
        self.timer_seq.set(seq + 1);
        let key = (deadline, splitmix64(self.seed ^ seq), seq);
        self.timers.borrow_mut().insert(key, waker);
        key
    }

    fn deregister(&self, key: TimerKey) {
        self.timers.borrow_mut().remove(&key);
    }

    /// Advances the clock to the earliest pending deadline and wakes every
    /// timer that is due.  Returns `false` when the wheel is empty.
    fn fire_next(&self) -> bool {
        let earliest = match self.timers.borrow().keys().next() {
            Some(&key) => key.0,
            None => return false,
        };
        match self.clock {
            ClockMode::Virtual => {
                if earliest > self.now.get() {
                    self.now.set(earliest);
                }
            }
            ClockMode::Monotonic { start } => {
                let now = start.elapsed();
                if now < earliest {
                    std::thread::sleep(earliest - now);
                }
                self.now.set(start.elapsed().max(earliest));
            }
        }
        let now = self.now.get();
        let mut timers = self.timers.borrow_mut();
        while let Some(&key) = timers.keys().next() {
            if key.0 > now {
                break;
            }
            if let Some(waker) = timers.remove(&key) {
                waker.wake();
            }
        }
        true
    }
}

thread_local! {
    /// The reactor of the executor currently inside [`LocalExecutor::run`]
    /// on this thread; [`Timer`]s find their wheel through it.
    static ACTIVE: RefCell<Option<Rc<Reactor>>> = const { RefCell::new(None) };
}

/// Restores the previously active reactor when `run` returns.
struct ActiveGuard {
    previous: Option<Rc<Reactor>>,
}

impl ActiveGuard {
    fn install(reactor: Rc<Reactor>) -> Self {
        let previous = ACTIVE.with(|active| active.borrow_mut().replace(reactor));
        ActiveGuard { previous }
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        ACTIVE.with(|active| *active.borrow_mut() = self.previous.take());
    }
}

fn active_reactor() -> Rc<Reactor> {
    ACTIVE.with(|active| {
        active.borrow().clone().expect(
            "smol shim: Timer polled outside LocalExecutor::run \
             (timers need the running executor's timer wheel)",
        )
    })
}

/// The current time as an offset from the running executor's creation —
/// virtual time under [`LocalExecutor::deterministic`], monotonic wall
/// time under [`LocalExecutor::new`].
///
/// # Panics
///
/// Panics when called outside [`LocalExecutor::run`].
pub fn now() -> Duration {
    active_reactor().now()
}

type TaskFuture = Pin<Box<dyn Future<Output = ()>>>;

struct ExecutorState {
    tasks: RefCell<Vec<Option<TaskFuture>>>,
    free: RefCell<Vec<TaskId>>,
    queue: Arc<WakeQueue>,
    reactor: Rc<Reactor>,
}

/// A single-threaded async task executor.
///
/// Spawned futures run on the thread that calls [`run`](Self::run); they
/// do not need to be `Send`.  See the crate docs for the clock modes.
pub struct LocalExecutor {
    state: Rc<ExecutorState>,
}

impl std::fmt::Debug for LocalExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalExecutor")
            .field("tasks", &self.state.tasks.borrow().len())
            .field("seed", &self.state.reactor.seed)
            .finish()
    }
}

impl Default for LocalExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalExecutor {
    fn with_clock(clock: ClockMode, seed: u64) -> Self {
        LocalExecutor {
            state: Rc::new(ExecutorState {
                tasks: RefCell::new(Vec::new()),
                free: RefCell::new(Vec::new()),
                queue: Arc::new(WakeQueue::default()),
                reactor: Rc::new(Reactor {
                    clock,
                    now: Cell::new(Duration::ZERO),
                    timers: RefCell::new(BTreeMap::new()),
                    timer_seq: Cell::new(0),
                    seed,
                }),
            }),
        }
    }

    /// An executor on the monotonic wall clock: idle waits really sleep.
    pub fn new() -> Self {
        Self::with_clock(ClockMode::Monotonic { start: Instant::now() }, 0)
    }

    /// A deterministic executor on a virtual clock (shim extension): idle
    /// waits jump the clock to the next timer deadline, and equal-deadline
    /// timers fire in an order seeded by `seed`.  Two runs of the same
    /// task set with the same seed schedule identically.
    pub fn deterministic(seed: u64) -> Self {
        Self::with_clock(ClockMode::Virtual, seed)
    }

    /// Current time as an offset from executor creation.
    pub fn now(&self) -> Duration {
        self.state.reactor.now()
    }

    /// Spawns a task, returning a [`Task`] handle that can be awaited for
    /// the task's output.  Dropping the handle cancels the task; call
    /// [`Task::detach`] to let it run unsupervised.
    pub fn spawn<T: 'static>(&self, future: impl Future<Output = T> + 'static) -> Task<T> {
        let join = Rc::new(RefCell::new(JoinState {
            result: None,
            waiter: None,
        }));
        let join_in_task = Rc::clone(&join);
        let wrapped = async move {
            let value = future.await;
            let mut state = join_in_task.borrow_mut();
            state.result = Some(value);
            if let Some(waker) = state.waiter.take() {
                waker.wake();
            }
        };
        let mut tasks = self.state.tasks.borrow_mut();
        let id = match self.state.free.borrow_mut().pop() {
            Some(id) => {
                tasks[id] = Some(Box::pin(wrapped));
                id
            }
            None => {
                tasks.push(Some(Box::pin(wrapped)));
                tasks.len() - 1
            }
        };
        drop(tasks);
        self.state.queue.push(id);
        Task {
            id,
            join,
            executor: Rc::downgrade(&self.state),
            detached: false,
        }
    }

    /// Drives the executor until `future` completes, returning its output.
    /// Spawned tasks run cooperatively alongside it; when everything is
    /// blocked, the reactor advances the clock to the next timer.
    ///
    /// # Panics
    ///
    /// Panics if every task (including `future`) is pending and no timer
    /// is registered — a genuine deadlock — or when called re-entrantly
    /// from inside a running task.
    pub fn run<T>(&self, future: impl Future<Output = T>) -> T {
        let _guard = ActiveGuard::install(Rc::clone(&self.state.reactor));
        let mut main = Box::pin(future);
        let main_waker = Waker::from(Arc::new(TaskWaker {
            id: MAIN_ID,
            queue: Arc::clone(&self.state.queue),
        }));
        self.state.queue.push(MAIN_ID);
        loop {
            while let Some(id) = self.state.queue.pop() {
                if id == MAIN_ID {
                    let mut cx = Context::from_waker(&main_waker);
                    if let Poll::Ready(value) = main.as_mut().poll(&mut cx) {
                        return value;
                    }
                } else {
                    self.poll_task(id);
                }
            }
            if !self.state.reactor.fire_next() {
                panic!(
                    "smol shim: executor deadlocked — every task is pending \
                     and no timer is registered"
                );
            }
        }
    }

    fn poll_task(&self, id: TaskId) {
        // Take the future out of the slab while polling it, so the task
        // can spawn siblings (which re-borrows the slab) without panicking.
        let future = self.state.tasks.borrow_mut().get_mut(id).and_then(Option::take);
        let Some(mut future) = future else { return };
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            queue: Arc::clone(&self.state.queue),
        }));
        let mut cx = Context::from_waker(&waker);
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => self.state.free.borrow_mut().push(id),
            Poll::Pending => self.state.tasks.borrow_mut()[id] = Some(future),
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    waiter: Option<Waker>,
}

/// A handle to a spawned task.  Awaiting it yields the task's output;
/// dropping it cancels the task unless [`detach`](Self::detach)ed.
pub struct Task<T> {
    id: TaskId,
    join: Rc<RefCell<JoinState<T>>>,
    executor: std::rc::Weak<ExecutorState>,
    detached: bool,
}

impl<T> std::fmt::Debug for Task<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task").field("id", &self.id).finish()
    }
}

impl<T> Task<T> {
    /// Lets the task keep running without the handle; its output is
    /// discarded when it completes.
    pub fn detach(mut self) {
        self.detached = true;
    }
}

impl<T> Drop for Task<T> {
    fn drop(&mut self) {
        if self.detached {
            return;
        }
        // Cancel: drop the task's future if it has not completed yet.
        if let Some(state) = self.executor.upgrade() {
            if let Some(slot) = state.tasks.borrow_mut().get_mut(self.id) {
                if slot.take().is_some() {
                    state.free.borrow_mut().push(self.id);
                }
            }
        }
    }
}

impl<T> Future for Task<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut join = this.join.borrow_mut();
        match join.result.take() {
            Some(value) => Poll::Ready(value),
            None => {
                join.waiter = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// A future that completes when its deadline passes, yielding the
/// reactor's time at completion.
///
/// Deadlines are [`Duration`] offsets from executor creation (see the
/// crate docs for why the shim does not use `Instant`).  Must be awaited
/// inside [`LocalExecutor::run`].
pub struct Timer {
    deadline: Option<Duration>,
    delay: Duration,
    absolute: bool,
    registration: Option<(Rc<Reactor>, TimerKey)>,
}

impl std::fmt::Debug for Timer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timer")
            .field("deadline", &self.deadline)
            .field("delay", &self.delay)
            .field("absolute", &self.absolute)
            .finish()
    }
}

impl Timer {
    /// Fires `delay` after the first poll.
    pub fn after(delay: Duration) -> Timer {
        Timer {
            deadline: None,
            delay,
            absolute: false,
            registration: None,
        }
    }

    /// Fires at an absolute offset from executor creation (shim
    /// extension: the real crate takes an `Instant`).  A deadline already
    /// in the past fires immediately — the natural way to schedule a
    /// drift-free periodic tick (`phase + k * period`).
    pub fn at(deadline: Duration) -> Timer {
        Timer {
            deadline: Some(deadline),
            delay: Duration::ZERO,
            absolute: true,
            registration: None,
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        // Deregister so a dropped (e.g. raced) timer does not leave a
        // stale entry growing the wheel.
        if let Some((reactor, key)) = self.registration.take() {
            reactor.deregister(key);
        }
    }
}

impl Future for Timer {
    type Output = Duration;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let reactor = match &this.registration {
            Some((reactor, _)) => Rc::clone(reactor),
            None => active_reactor(),
        };
        let now = reactor.now();
        let deadline = *this.deadline.get_or_insert(now + this.delay);
        if now >= deadline {
            if let Some((reactor, key)) = this.registration.take() {
                reactor.deregister(key);
            }
            return Poll::Ready(now);
        }
        // Re-register with the freshest waker on every pending poll.
        if let Some((reactor, key)) = this.registration.take() {
            reactor.deregister(key);
        }
        let key = reactor.register(deadline, cx.waker().clone());
        this.registration = Some((reactor, key));
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn virtual_clock_jumps_instead_of_sleeping() {
        let executor = LocalExecutor::deterministic(1);
        let wall = Instant::now();
        let elapsed = executor.run(async {
            Timer::after(Duration::from_secs(3600)).await;
            now()
        });
        assert!(elapsed >= Duration::from_secs(3600));
        assert!(wall.elapsed() < Duration::from_secs(5), "must not really sleep");
    }

    #[test]
    fn tasks_interleave_deterministically() {
        fn trace(seed: u64) -> Vec<u64> {
            let executor = LocalExecutor::deterministic(seed);
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..4u64 {
                let log = Rc::clone(&log);
                executor
                    .spawn(async move {
                        for k in 0..3u64 {
                            Timer::at(Duration::from_millis(10 * (k + 1))).await;
                            log.borrow_mut().push(i * 10 + k);
                        }
                    })
                    .detach();
            }
            executor.run(async {
                Timer::after(Duration::from_millis(50)).await;
            });
            let result = log.borrow().clone();
            result
        }
        assert_eq!(trace(7), trace(7), "same seed, same schedule");
        assert_eq!(trace(7).len(), 12);
    }

    #[test]
    fn task_handles_yield_outputs_and_cancel_on_drop() {
        let executor = LocalExecutor::deterministic(2);
        let counter = Arc::new(AtomicU64::new(0));
        let task = executor.spawn(async { 21u64 * 2 });
        let cancelled = {
            let counter = Arc::clone(&counter);
            executor.spawn(async move {
                Timer::after(Duration::from_secs(1)).await;
                counter.fetch_add(1, Ordering::SeqCst);
            })
        };
        drop(cancelled);
        let value = executor.run(async move {
            let value = task.await;
            Timer::after(Duration::from_secs(2)).await;
            value
        });
        assert_eq!(value, 42);
        assert_eq!(counter.load(Ordering::SeqCst), 0, "dropped task must not run");
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn deadlock_panics_instead_of_hanging() {
        let executor = LocalExecutor::deterministic(3);
        executor.run(std::future::pending::<()>());
    }
}
