//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!` / `criterion_main!` macros, `Criterion`,
//! benchmark groups and `Bencher::iter` with a simple adaptive wall-clock
//! measurement: warm up briefly, then time batches until enough samples are
//! collected, and print mean / median per iteration. Results are also
//! appended as JSON lines to the file named by `CRITERION_JSON` (if set), so
//! benchmark trajectories can be recorded across runs.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            name: name.to_string(),
            measurement: self.measurement,
        };
        f(&mut bencher);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the adaptive harness ignores it.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            name: format!("{}/{}", self.name, id.name),
            measurement: self.criterion.measurement,
        };
        f(&mut bencher);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Measures one closure.
#[derive(Debug)]
pub struct Bencher {
    name: String,
    measurement: Duration,
}

impl Bencher {
    /// Times `f`, printing mean and median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call (also primes caches and catches panics early).
        black_box(f());

        let mut samples: Vec<f64> = Vec::new();
        let started = Instant::now();
        // Calibrate the batch so each sample costs roughly 1/50 of the
        // measurement budget.
        let probe = Instant::now();
        black_box(f());
        let single = probe.elapsed().as_nanos().max(1) as f64;
        let batch = ((self.measurement.as_nanos() as f64 / 50.0 / single).round() as u64)
            .clamp(1, 1_000_000);

        // At least one sample even when a single iteration overruns the
        // whole measurement budget (e.g. a million-process group build).
        while samples.is_empty() || (started.elapsed() < self.measurement && samples.len() < 200) {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{:<50} time: [median {} mean {}] ({} samples × {batch} iters)",
            self.name,
            format_ns(median),
            format_ns(mean),
            samples.len(),
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            use std::io::Write;
            if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path)
            {
                let _ = writeln!(
                    file,
                    "{{\"bench\":\"{}\",\"median_ns\":{median:.1},\"mean_ns\":{mean:.1}}}",
                    self.name
                );
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut criterion = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut runs = 0u64;
        criterion.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_ids_work() {
        let mut criterion = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut group = criterion.benchmark_group("group");
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 42), &42u64, |b, &v| {
            b.iter(|| v * 2)
        });
        group.finish();
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(format_ns(5.0).ends_with("ns"));
        assert!(format_ns(5_000.0).ends_with("µs"));
        assert!(format_ns(5_000_000.0).ends_with("ms"));
        assert!(format_ns(5_000_000_000.0).ends_with('s'));
    }
}
