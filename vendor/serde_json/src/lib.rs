//! Offline stand-in for `serde_json`: renders and parses the vendored
//! [`serde::Value`] tree as JSON text.

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        position: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.position != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if !v.is_finite() {
                return Err(Error::custom("JSON cannot represent non-finite floats"));
            }
            // Rust's shortest-round-trip float formatting is parse-exact.
            out.push_str(&v.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    position: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.position) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.position += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.position).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.position += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.position
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at byte {}",
                self.position
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.position..].starts_with(keyword.as_bytes()) {
            self.position += keyword.len();
            Ok(value)
        } else {
            Err(Error::custom(format!("invalid keyword at byte {}", self.position)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.position += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.position += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.parse_hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-scan as UTF-8 from the byte before `position`.
                    let start = self.position - 1;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().expect("non-empty");
                    out.push(ch);
                    self.position = start + ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.position + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.position..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.position = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.position;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.position += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.position += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.position])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if let Some(digits) = text.strip_prefix('-') {
            digits
                .parse::<u64>()
                .map(|v| Value::Int(-(v as i64)))
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.position += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.position += 1,
                Some(b']') => {
                    self.position += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.position += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.position += 1,
                Some(b'}') => {
                    self.position += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_text() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>(&to_string(&1.25f64).unwrap()).unwrap(), 1.25);
        assert_eq!(from_str::<f64>(&to_string(&55.5f64).unwrap()).unwrap(), 55.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn shortest_float_formatting_is_parse_exact() {
        for &f in &[0.1f64, 1.0 / 3.0, 1e-300, 123_456_789.123_456_79, -0.25] {
            let text = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&text).unwrap(), f, "{text}");
        }
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let original = "line\nbreak \"quoted\" back\\slash tab\t unicode é 🦀".to_string();
        let text = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), original);
        // Explicit \u escapes parse too.
        assert_eq!(from_str::<String>("\"\\u0041\\u00e9\"").unwrap(), "Aé");
        assert_eq!(from_str::<String>("\"\\ud83e\\udd80\"").unwrap(), "🦀");
    }

    #[test]
    fn containers_round_trip_through_text() {
        let v = vec![(1u64, 2usize), (3, 4)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[1,2],[3,4]]");
        assert_eq!(from_str::<Vec<(u64, usize)>>(&text).unwrap(), v);

        let mut map = std::collections::BTreeMap::new();
        map.insert("a".to_string(), 1u32);
        map.insert("b".to_string(), 2u32);
        let text = to_string(&map).unwrap();
        assert_eq!(from_str::<std::collections::BTreeMap<String, u32>>(&text).unwrap(), map);
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u32>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
