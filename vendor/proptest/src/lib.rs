//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the API this workspace uses: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`Just`], [`any`], [`prop_oneof!`] and
//! `prop::collection::{vec, btree_set}`. Cases are generated from a
//! deterministic per-test PRNG (seeded from the test's module path), so runs
//! are reproducible; there is no shrinking — a failing case panics with the
//! generated values available via the assertion message.

use std::rc::Rc;

/// Number of cases each property runs, overridable with `PROPTEST_CASES`.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Deterministic test-case PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name and case index.
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(hash ^ ((case as u64) << 32 | case as u64))
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below 0");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy it maps to.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (shareable; cloning is cheap).
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Numeric types usable as range strategies.
pub trait RangeValue: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo_wide = lo as i128;
                let hi_wide = hi as i128;
                let span = (hi_wide - lo_wide + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from an empty range");
                let draw = ((rng.next_u64() as u128) * span) >> 64;
                (lo_wide + draw as i128) as $t
            }
        }
    )*};
}

impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_value_float {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample(rng: &mut TestRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo <= hi, "cannot sample from an empty range");
                lo + (rng.unit() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_range_value_float!(f32, f64);

impl<T: RangeValue> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng, self.start, self.end, false)
    }
}

impl<T: RangeValue> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// The strategy type produced by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for simple types.
#[derive(Debug, Clone, Copy)]
pub struct FullDomain<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for FullDomain<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullDomain<$t>;
            fn arbitrary() -> Self::Strategy { FullDomain(std::marker::PhantomData) }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullDomain<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullDomain<bool>;
    fn arbitrary() -> Self::Strategy {
        FullDomain(std::marker::PhantomData)
    }
}

/// The canonical strategy for `A`'s full domain.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Inclusive size bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { lo: exact, hi: exact }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(range: std::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange { lo: range.start, hi: range.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *range.start(), hi: *range.end() }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo >= self.hi {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of elements from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of elements from `element`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets with a target size drawn from `size` (best effort: if
    /// the element domain is too small the set may come out smaller, but
    /// never below one element when the range requires it).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < 10 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    //! The common imports: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, BoxedStrategy, Just, Strategy};
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property (plain `assert!` without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(binding in strategy, …) { body }`
/// becomes a `#[test]` running [`cases`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::cases();
                for __case in 0..__cases {
                    let mut __rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_unions_sample_within_bounds() {
        let mut rng = crate::TestRng::deterministic("test", 0);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&(3u32..10), &mut rng);
            assert!((3..10).contains(&v));
            let w = crate::Strategy::generate(&(0i64..=5), &mut rng);
            assert!((0..=5).contains(&w));
            let u = crate::Strategy::generate(&prop_oneof![Just(1u8), Just(2u8)], &mut rng);
            assert!(u == 1 || u == 2);
        }
    }

    #[test]
    fn collections_respect_size_ranges() {
        let mut rng = crate::TestRng::deterministic("test2", 0);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&prop::collection::vec(0u32..4, 1..5), &mut rng);
            assert!((1..5).contains(&v.len()));
            let exact = crate::Strategy::generate(&prop::collection::vec(0u32..4, 3), &mut rng);
            assert_eq!(exact.len(), 3);
            let set =
                crate::Strategy::generate(&prop::collection::btree_set(0usize..100, 1..10), &mut rng);
            assert!(!set.is_empty() && set.len() < 10);
        }
    }

    proptest! {
        /// The macro itself: patterns, multiple bindings, flat_map.
        #[test]
        fn macro_generates_cases(
            (a, b) in (0u32..10, 0u32..10),
            v in prop::collection::vec(any::<bool>(), 0..4),
            s in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u32..10, n)),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(v.len() < 4);
            prop_assert!(!s.is_empty() && s.len() < 4);
        }
    }
}
