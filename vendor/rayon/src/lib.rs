//! Offline stand-in for `rayon`.
//!
//! Implements the one pattern this workspace uses —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` — on top of
//! `std::thread::scope` with an atomic work-stealing index, so independent
//! items are processed by as many worker threads as the host has cores.
//! Results are returned in input order regardless of which thread computed
//! them, and worker panics propagate to the caller like rayon's do.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    //! The common imports: `use rayon::prelude::*;`.
    pub use crate::IntoParallelRefIterator;
}

/// Number of worker threads used for parallel iteration: the
/// `RAYON_NUM_THREADS` environment variable if set (like the real rayon),
/// otherwise the host's available parallelism.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
}

/// Conversion into a borrowing parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: 'a;
    /// Starts a parallel iteration over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over slice elements.
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` (runs when `collect` is called).
    pub fn map<R, F: Fn(&'a T) -> R + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap { items: self.items, f }
    }
}

/// A mapped parallel iterator, ready to collect.
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map on worker threads and collects results in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        C::from(run_ordered(self.items, &self.f))
    }
}

fn run_ordered<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(
    items: &'a [T],
    f: &F,
) -> Vec<R> {
    run_ordered_on(items, f, current_num_threads())
}

fn run_ordered_on<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(
    items: &'a [T],
    f: &F,
    threads: usize,
) -> Vec<R> {
    let count = items.len();
    let threads = threads.min(count);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let mut results: Vec<Option<R>> = (0..count).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= count {
                            break;
                        }
                        produced.push((index, f(&items[index])));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            // A worker panic re-panics here, inside the scope.
            for (index, result) in handle.join().expect("worker thread panicked") {
                results[index] = Some(result);
            }
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("every index processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&v| v * 2).collect();
        assert_eq!(doubled, (0..1_000).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&v| v).collect();
        assert!(out.is_empty());
        let one = vec![7u32];
        let out: Vec<u32> = one.par_iter().map(|&v| v + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn threaded_path_uses_multiple_threads_and_keeps_order() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..256).collect();
        // Force the threaded path even on single-core hosts.
        let doubled = super::run_ordered_on(
            &input,
            &|&v: &u32| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(50));
                v * 2
            },
            4,
        );
        assert_eq!(doubled, (0..256).map(|v| v * 2).collect::<Vec<_>>());
        assert!(seen.lock().unwrap().len() > 1, "expected parallel execution");
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn worker_panics_propagate_from_threads() {
        let input: Vec<u32> = (0..64).collect();
        let _ = super::run_ordered_on(
            &input,
            &|&v: &u32| {
                if v == 33 {
                    panic!("boom");
                }
                v
            },
            4,
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate_from_the_sequential_fallback() {
        let input: Vec<u32> = (0..4).collect();
        let _ = super::run_ordered_on(
            &input,
            &|&v: &u32| {
                if v == 2 {
                    panic!("boom");
                }
                v
            },
            1,
        );
    }
}
