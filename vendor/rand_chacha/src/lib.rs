//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 stream cipher used
//! as a PRNG. Deterministic and statistically strong, but not guaranteed to
//! be bit-compatible with the real crate (nothing in this workspace relies
//! on cross-crate bit compatibility, only on self-consistency per seed).

use rand::{RngCore, SeedableRng};

/// The ChaCha stream cipher with 8 rounds, exposed as a [`RngCore`].
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    /// Next unread word of `buffer`; 16 means "refill needed".
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: column round + diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        Self {
            state,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "got {hits}");
    }
}
