//! Offline stand-in for `rustc-hash`: the Fx hash function (a fast,
//! non-cryptographic multiply-rotate hasher) plus the usual `FxHashMap` /
//! `FxHashSet` aliases. Ideal for small keys like the simulation's event
//! identifiers, where SipHash's DoS resistance is pure overhead.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_to_hash(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_behave_like_std() {
        let mut set: FxHashSet<u64> = FxHashSet::default();
        for v in 0..1_000u64 {
            assert!(set.insert(v));
        }
        assert_eq!(set.len(), 1_000);
        assert!(set.contains(&500));
        assert!(!set.contains(&1_000));

        let mut map: FxHashMap<String, u32> = FxHashMap::default();
        map.insert("a".to_string(), 1);
        map.insert("b".to_string(), 2);
        assert_eq!(map.get("a"), Some(&1));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn with_capacity_and_hasher_presizes() {
        let set: FxHashSet<u64> = FxHashSet::with_capacity_and_hasher(64, Default::default());
        assert!(set.capacity() >= 64);
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let hash = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(hash(42), hash(42));
        let distinct: std::collections::HashSet<u64> = (0..1_000).map(hash).collect();
        assert_eq!(distinct.len(), 1_000);
    }
}
