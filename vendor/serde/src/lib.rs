//! Offline stand-in for `serde`.
//!
//! Serialization goes through an owned JSON-like [`Value`] tree instead of
//! serde's visitor machinery: [`Serialize`] renders a value tree,
//! [`Deserialize`] rebuilds a value from one. The companion `serde_derive`
//! proc-macro derives both traits for plain (non-generic) structs and enums
//! using serde's conventions: structs become objects, newtype structs are
//! transparent, and enums are externally tagged.

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used for negative numbers).
    Int(i64),
    /// Unsigned integer (used for non-negative numbers).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object fields, if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up an object field by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// The elements, if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value as a float (any of the number variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            Value::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            Value::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }
}

// `Value` round-trips through itself, so generic JSON documents (e.g. the
// BENCH_*.json snapshots) can be parsed without a schema struct.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` as a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up a required struct field; used by the derive expansion.
pub fn struct_field<'a>(
    fields: &'a [(String, Value)],
    name: &str,
    type_name: &str,
) -> Result<&'a Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` of `{type_name}`")))
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom("unsigned integer out of range")),
                    Value::Int(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom("unsigned integer out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 { Value::Int(*self as i64) } else { Value::UInt(*self as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom("signed integer out of range")),
                    Value::UInt(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom("signed integer out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(v) => Ok(*v as $t),
                    Value::Int(v) => Ok(*v as $t),
                    Value::UInt(v) => Ok(*v as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(value)?))
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(std::sync::Arc::new(T::from_value(value)?))
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($idx,)+].len();
                        if items.len() != expected {
                            return Err(Error::custom("tuple arity mismatch"));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::custom("expected array for tuple")),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.25f64.to_value()).unwrap(), 1.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let pair = (7u64, 9usize);
        assert_eq!(<(u64, usize)>::from_value(&pair.to_value()).unwrap(), pair);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), none);
        assert_eq!(
            Option::<u32>::from_value(&Some(3u32).to_value()).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn object_lookup_reports_missing_fields() {
        let object = Value::Object(vec![("a".to_string(), Value::UInt(1))]);
        assert!(object.get("a").is_some());
        assert!(object.get("b").is_none());
        let fields = object.as_object().unwrap();
        assert!(struct_field(fields, "a", "T").is_ok());
        assert!(struct_field(fields, "b", "T").is_err());
    }
}
