//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] and
//! [`seq::SliceRandom`]. The distributions are deterministic and of decent
//! statistical quality, but make no attempt to be bit-compatible with the
//! real `rand` crate.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let len = rest.len();
            rest.copy_from_slice(&bytes[..len]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full domain (the
/// `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Uniform value in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from a bounded range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)` (`hi` exclusive); `inclusive` widens
    /// the upper bound to `hi` itself.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Work in u128 so the span of any 64-bit signed range fits.
                let lo_wide = lo as i128;
                let hi_wide = hi as i128;
                let span = (hi_wide - lo_wide + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from an empty range");
                // Multiply-shift keeps the draw unbiased enough for simulation.
                let draw = ((rng.next_u64() as u128) * span) >> 64;
                (lo_wide + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample from an empty range");
                let unit = unit_f64(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_range(rng, lo, hi, true)
    }
}

/// High-level convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} must lie in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// PRNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array for practical generators).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Random slice operations (`choose`, `choose_multiple`, `shuffle`).

    use crate::Rng;

    /// Random selection / permutation over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Picks one element uniformly, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Picks `amount` distinct elements uniformly (all of them if the
        /// slice is shorter), in random order.
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: only the prefix we return gets shuffled.
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the bits look uniform.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = Counter(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_multiple_returns_distinct_elements() {
        let mut rng = Counter(3);
        let items: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = items.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "duplicates in {picked:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(4);
        let mut items: Vec<u32> = (0..20).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
