//! End-to-end integration tests spanning every crate of the workspace:
//! address space → membership tree → interest oracle → pmcast protocol →
//! simulated network → delivery report.

use std::sync::Arc;

use pmcast::{
    AddressSpace, AssignmentOracle, Event, Filter, FloodFactory, GlobalOracleView, GroupTree,
    ImplicitRegularTree, Interest, InterestOracle, MembershipView, MulticastReport,
    NetworkConfig, PmcastConfig, PmcastFactory, Predicate, ProcessId, ProtocolFactory,
    Simulation, TreeTopology, UniformOracle,
};

fn global_view(n: usize) -> Arc<dyn MembershipView> {
    Arc::new(GlobalOracleView::new(n))
}
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_tree() -> ImplicitRegularTree {
    ImplicitRegularTree::new(AddressSpace::regular(3, 4).expect("valid shape"))
}

#[test]
fn multicast_reaches_interested_processes_across_subtrees() {
    let topology = small_tree();
    let mut rng = ChaCha8Rng::seed_from_u64(100);
    let oracle = Arc::new(AssignmentOracle::sample(&topology, 0.4, &mut rng));
    let event = Event::builder(1).int("b", 1).build();

    let group = PmcastFactory::build(&topology, oracle.clone(), global_view(topology.member_count()), &PmcastConfig::default());
    let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(100));
    // Publish from an interested process if possible.
    let sender = oracle
        .iter()
        .next()
        .and_then(|a| topology.index_of(a))
        .unwrap_or(0);
    sim.process_mut(ProcessId(sender)).pmcast(event.clone());
    sim.run_until_quiescent(300);

    let report = MulticastReport::collect(&event, sim.processes(), oracle.as_ref());
    assert_eq!(report.interested, oracle.len());
    assert!(
        report.delivery_ratio() > 0.85,
        "delivery ratio {} too low",
        report.delivery_ratio()
    );
    // No uninterested process ever *delivers*.
    for process in sim.processes() {
        if process.has_delivered(event.id()) {
            assert!(oracle.is_interested(process.address(), &event));
        }
    }
}

#[test]
fn broadcast_special_case_delivers_everywhere_even_with_losses() {
    let topology = small_tree();
    let oracle: Arc<dyn InterestOracle + Send + Sync> =
        Arc::new(UniformOracle::new(topology.member_count()));
    let event = Event::builder(2).build();

    let config = PmcastConfig::default().with_fanout(4);
    let group = PmcastFactory::build(&topology, oracle, global_view(topology.member_count()), &PmcastConfig { ..config });
    let mut sim = Simulation::new(
        group.processes,
        NetworkConfig::default().with_loss(0.05).with_seed(3),
    );
    sim.process_mut(ProcessId(17)).pmcast(event.clone());
    sim.run_until_quiescent(300);

    let delivered = sim
        .processes()
        .filter(|p| p.has_delivered(event.id()))
        .count();
    assert!(
        delivered >= 62,
        "only {delivered}/64 delivered under 5% loss with F = 4"
    );
}

#[test]
fn content_based_group_delivers_exactly_to_matching_subscribers() {
    // Explicit membership where subscriptions partition the group by topic.
    let space = AddressSpace::regular(2, 6).expect("valid shape");
    let mut tree = GroupTree::new(space.clone());
    for (index, address) in space.iter().enumerate() {
        let topic = match index % 3 {
            0 => "sports",
            1 => "markets",
            _ => "weather",
        };
        tree.join(address, Filter::new().with("topic", Predicate::eq_str(topic)))
            .expect("fresh address");
    }
    let tree = Arc::new(tree);

    let group = PmcastFactory::build(tree.as_ref(), tree.clone(), global_view(tree.member_count()), &PmcastConfig::default().with_fanout(3));
    let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(8));
    let event = Event::builder(77).str("topic", "markets").build();
    sim.process_mut(ProcessId(1)).pmcast(event.clone());
    sim.run_until_quiescent(300);

    let mut delivered = 0;
    for process in sim.processes() {
        let wants = tree
            .subscription(process.address())
            .map(|f| f.matches(&event))
            .unwrap_or(false);
        assert_eq!(
            process.has_delivered(event.id()),
            wants,
            "delivery mismatch at {}",
            process.address()
        );
        if wants {
            delivered += 1;
        }
    }
    assert_eq!(delivered, 12, "a third of the 36 subscribers follow markets");
}

#[test]
fn crashes_of_a_minority_do_not_break_delivery_for_the_rest() {
    let topology = small_tree();
    let oracle: Arc<dyn InterestOracle + Send + Sync> =
        Arc::new(UniformOracle::new(topology.member_count()));
    let event = Event::builder(5).build();

    let group = PmcastFactory::build(&topology, oracle, global_view(topology.member_count()), &PmcastConfig::default().with_fanout(3));
    let mut sim = Simulation::new(
        group.processes,
        NetworkConfig::faulty(0.02, 0.05, 9), // 2% loss, ~5% of processes crashed
    );
    sim.process_mut(ProcessId(0)).pmcast(event.clone());
    sim.run_until_quiescent(300);

    let crashed = sim.crashed_count();
    let live_delivered = (0..sim.process_count())
        .filter(|&i| !sim.is_crashed(ProcessId(i)))
        .filter(|&i| sim.process(ProcessId(i)).has_delivered(event.id()))
        .count();
    let live_total = sim.process_count() - crashed;
    assert!(crashed < sim.process_count() / 2);
    assert!(
        live_delivered as f64 >= 0.9 * live_total as f64,
        "only {live_delivered}/{live_total} live processes delivered"
    );
}

#[test]
fn pmcast_uses_fewer_messages_than_flooding_when_interest_is_sparse() {
    let topology = small_tree();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let oracle = Arc::new(AssignmentOracle::sample(&topology, 0.15, &mut rng));
    let event = Event::builder(6).build();
    let sender = oracle
        .iter()
        .next()
        .and_then(|a| topology.index_of(a))
        .unwrap_or(0);

    // pmcast run.
    let group = PmcastFactory::build(&topology, oracle.clone(), global_view(topology.member_count()), &PmcastConfig::default());
    let mut pmcast_sim = Simulation::new(group.processes, NetworkConfig::reliable(12));
    pmcast_sim.process_mut(ProcessId(sender)).pmcast(event.clone());
    pmcast_sim.run_until_quiescent(300);

    // Flooding baseline run.
    let flood = FloodFactory::build(&topology, oracle.clone(), global_view(topology.member_count()), &PmcastConfig::default());
    let mut flood_sim = Simulation::new(flood.processes, NetworkConfig::reliable(12));
    flood_sim.process_mut(ProcessId(sender)).broadcast(event.clone());
    flood_sim.run_until_quiescent(300);

    assert!(
        pmcast_sim.stats().messages_sent < flood_sim.stats().messages_sent,
        "pmcast sent {} messages, flooding {}",
        pmcast_sim.stats().messages_sent,
        flood_sim.stats().messages_sent
    );

    // And far fewer uninterested processes are touched.
    let pmcast_report = MulticastReport::collect(&event, pmcast_sim.processes(), oracle.as_ref());
    let flood_report = MulticastReport::collect(&event, flood_sim.processes(), oracle.as_ref());
    assert!(pmcast_report.received_uninterested < flood_report.received_uninterested);
}

#[test]
fn several_publishers_can_multicast_concurrently() {
    let topology = small_tree();
    let oracle: Arc<dyn InterestOracle + Send + Sync> =
        Arc::new(UniformOracle::new(topology.member_count()));
    let group = PmcastFactory::build(&topology, oracle, global_view(topology.member_count()), &PmcastConfig::default());
    let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(33));

    let events: Vec<Event> = (0..4).map(|i| Event::builder(500 + i).int("b", i as i64).build()).collect();
    for (offset, event) in events.iter().enumerate() {
        sim.process_mut(ProcessId(offset * 16)).pmcast(event.clone());
    }
    sim.run_until_quiescent(400);

    for event in &events {
        let delivered = sim
            .processes()
            .filter(|p| p.has_delivered(event.id()))
            .count();
        assert_eq!(delivered, 64, "event {} not fully delivered", event.id());
    }
}
