//! Integration tests for membership maintenance under churn and for the
//! protocol's behaviour under failure injection (crashed delegates, heavy
//! message loss, crashed publishers).

use std::sync::Arc;

use pmcast::membership::{MembershipEvent, MembershipManager, ViewExchange};
use pmcast::{
    Address, AddressSpace, AssignmentOracle, Event, Filter, GlobalOracleView, GroupTree,
    ImplicitRegularTree, InterestOracle, MembershipView, MulticastReport, NetworkConfig,
    PmcastConfig, PmcastFactory, Predicate, ProcessId, ProtocolFactory, Simulation,
    TreeTopology, UniformOracle,
};

fn global_view(n: usize) -> Arc<dyn MembershipView> {
    Arc::new(GlobalOracleView::new(n))
}
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn joins_and_leaves_propagate_through_anti_entropy() {
    let space = AddressSpace::regular(2, 5).expect("valid shape");
    let mut bootstrap = GroupTree::new(space.clone());
    for address in space.iter().take(15) {
        bootstrap
            .join(address, Filter::new().with("b", Predicate::gt(0.0)))
            .expect("fresh address");
    }
    let redundancy = 2;
    let mut managers: Vec<MembershipManager> = bootstrap
        .members()
        .iter()
        .map(|address| {
            MembershipManager::new(
                bootstrap.view_table_for(address, redundancy).expect("member"),
                redundancy,
                4,
            )
        })
        .collect();

    // One contact learns about a join, another about a leave.
    let joiner: Address = "4.4".parse().unwrap();
    managers[0].apply_join(joiner.clone(), Filter::match_all());
    let leaver: Address = "1.2".parse().unwrap();
    managers[3].apply_leave(&leaver);

    // Deterministic ring of pairwise exchanges until convergence.
    let exchange = ViewExchange::new();
    for _ in 0..6 {
        let mut changed = 0;
        for i in 0..managers.len() {
            let j = (i + 1) % managers.len();
            let (low, high) = if i < j { (i, j) } else { (j, i) };
            let (left, right) = managers.split_at_mut(high);
            let (a, b) = exchange.reconcile(left[low].table_mut(), right[0].table_mut());
            changed += a + b;
        }
        if changed == 0 {
            break;
        }
    }

    // Every replica now sees the new depth-1 subgroup of the joiner and the
    // reduced process count of the leaver's subgroup.
    for manager in &managers {
        let root_view = manager.table().view(1);
        let joined_line = root_view.entry(4).expect("subgroup 4 is known everywhere");
        assert!(joined_line.process_count() >= 1);
        let left_line = root_view.entry(1).expect("subgroup 1 still exists");
        assert_eq!(left_line.process_count(), 4, "owner {}", manager.table().owner());
        assert!(!left_line.delegates().contains(&leaver));
    }
}

#[test]
fn silent_neighbours_get_suspected_and_excluded() {
    let space = AddressSpace::regular(2, 4).expect("valid shape");
    let tree = GroupTree::fully_populated(space, Filter::match_all());
    let owner: Address = "2.0".parse().unwrap();
    let mut manager = MembershipManager::new(tree.view_table_for(&owner, 2).expect("member"), 2, 3);

    // Neighbours 2.1 and 2.3 keep talking; 2.2 goes silent.
    let mut suspected = Vec::new();
    for _ in 0..8 {
        manager.record_contact(&"2.1".parse().unwrap());
        manager.record_contact(&"2.3".parse().unwrap());
        suspected.extend(manager.tick());
    }
    let silent: Address = "2.2".parse().unwrap();
    assert!(suspected.contains(&MembershipEvent::Suspected(silent.clone())));

    // Excluding the suspect removes it from the leaf view.
    manager.apply_leave(&silent);
    assert!(manager
        .table()
        .view(2)
        .entries()
        .iter()
        .all(|entry| !entry.delegates().contains(&silent)));
}

#[test]
fn crashed_root_delegates_do_not_prevent_delivery() {
    // Crash two of the three delegates of every depth-1 subgroup: the
    // redundancy R = 3 plus the publisher's participation at every depth
    // keeps delivery going.
    let topology = ImplicitRegularTree::new(AddressSpace::regular(2, 6).expect("valid shape"));
    let oracle: Arc<dyn InterestOracle + Send + Sync> =
        Arc::new(UniformOracle::new(topology.member_count()));
    let config = PmcastConfig::default().with_fanout(3);
    let group = PmcastFactory::build(&topology, oracle, global_view(topology.member_count()), &config);
    let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(77));

    // Delegates of subgroup k are k.0, k.1, k.2; crash k.0 and k.1 for k ≥ 1
    // (keeping subgroup 0 intact so the publisher's own subtree is healthy).
    for k in 1..6u32 {
        for low in 0..2u32 {
            let address = Address::new(vec![k, low]);
            let id = topology.index_of(&address).expect("member");
            sim.crash(ProcessId(id));
        }
    }
    let event = Event::builder(1).build();
    sim.process_mut(ProcessId(0)).pmcast(event.clone());
    sim.run_until_quiescent(300);

    let live_missed: Vec<String> = (0..sim.process_count())
        .filter(|&i| !sim.is_crashed(ProcessId(i)))
        .filter(|&i| !sim.process(ProcessId(i)).has_delivered(event.id()))
        .map(|i| sim.process(ProcessId(i)).address().to_string())
        .collect();
    let live_total = sim.process_count() - sim.crashed_count();
    assert!(
        live_missed.len() <= live_total / 10,
        "{} of {} live processes missed the event: {:?}",
        live_missed.len(),
        live_total,
        live_missed
    );
}

#[test]
fn publisher_crash_after_injection_still_spreads_the_event() {
    let topology = ImplicitRegularTree::new(AddressSpace::regular(2, 5).expect("valid shape"));
    let oracle: Arc<dyn InterestOracle + Send + Sync> =
        Arc::new(UniformOracle::new(topology.member_count()));
    let group = PmcastFactory::build(
        &topology,
        oracle,
        global_view(topology.member_count()),
        &PmcastConfig::default().with_fanout(3),
    );
    let schedule = pmcast::simnet::CrashPlan::Scheduled(vec![(3, 0)]);
    let mut sim = Simulation::new(
        group.processes,
        NetworkConfig::reliable(5).with_crash_plan(schedule),
    );
    let event = Event::builder(9).build();
    sim.process_mut(ProcessId(0)).pmcast(event.clone());
    sim.run_until_quiescent(300);

    // The publisher got three rounds before crashing: enough for the event
    // to escape its subtree and reach most of the group.
    let delivered = (0..sim.process_count())
        .filter(|&i| !sim.is_crashed(ProcessId(i)))
        .filter(|&i| sim.process(ProcessId(i)).has_delivered(event.id()))
        .count();
    assert!(
        delivered >= (sim.process_count() - 1) * 7 / 10,
        "only {delivered} live processes delivered after the publisher crashed"
    );
}

#[test]
fn heavy_loss_with_higher_fanout_still_delivers_to_interested_processes() {
    let topology = ImplicitRegularTree::new(AddressSpace::regular(3, 4).expect("valid shape"));
    let mut rng = ChaCha8Rng::seed_from_u64(19);
    let oracle = Arc::new(AssignmentOracle::sample(&topology, 0.5, &mut rng));
    // Tell the protocol about the harsher environment so its round budgets
    // stretch accordingly (Section 3.3, conservative estimates).
    let env = pmcast::EnvParams {
        loss_probability: 0.25,
        crash_probability: 0.01,
        pittel_constant: 2.0,
    };
    let config = PmcastConfig::default().with_fanout(4).with_env(env);
    let group = PmcastFactory::build(&topology, oracle.clone(), global_view(topology.member_count()), &config);
    let mut sim = Simulation::new(
        group.processes,
        NetworkConfig::faulty(0.25, 0.01, 21),
    );
    let sender = oracle
        .iter()
        .next()
        .and_then(|a| topology.index_of(a))
        .unwrap_or(0);
    sim.process_mut(ProcessId(sender)).pmcast(Event::builder(2).build());
    sim.run_until_quiescent(400);

    let event = Event::builder(2).build();
    let report = MulticastReport::collect(&event, sim.processes(), oracle.as_ref());
    assert!(
        report.delivery_ratio() > 0.75,
        "delivery ratio {} under 25% loss",
        report.delivery_ratio()
    );
    assert!(sim.stats().messages_lost > 0);
}
