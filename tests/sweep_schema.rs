//! Schema regression for the sweep examples' `--json` output, against the
//! committed `BENCH_PR9.json` snapshot.
//!
//! The five sweep examples emit one JSON object per row; downstream
//! consumers (the BENCH snapshots, plotting scripts, the CI drift gate)
//! key on the field names.  This test pins the shape: every row of the
//! snapshot must carry exactly the fields the current emitters produce —
//! renaming or dropping a column fails here instead of silently breaking
//! the snapshot lineage.
//!
//! The prediction fields themselves (`predicted`, `predicted_rounds`,
//! `model_in_domain`, and the per-provider `*_predicted` / `*_in_domain`
//! variants) are additionally checked straight from
//! [`pmcast::ModelPrediction::json_fields`], so the emitter and the
//! snapshot cannot drift apart.

use serde::Value;

use pmcast::{predict, Scenario};

/// Parses the committed snapshot.
fn bench_pr9() -> Value {
    let raw = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_PR9.json"))
        .expect("BENCH_PR9.json is committed at the workspace root");
    serde_json::from_str(&raw).expect("BENCH_PR9.json is valid JSON")
}

/// A required field of a snapshot row.
fn field<'a>(row: &'a Value, key: &str, context: &str) -> &'a Value {
    row.get(key).unwrap_or_else(|| panic!("{context}: missing field `{key}`"))
}

/// A required numeric field.
fn float(row: &Value, key: &str, context: &str) -> f64 {
    field(row, key, context)
        .as_f64()
        .unwrap_or_else(|| panic!("{context}: `{key}` is not a number"))
}

/// A required boolean field.
fn boolean(row: &Value, key: &str, context: &str) -> bool {
    field(row, key, context)
        .as_bool()
        .unwrap_or_else(|| panic!("{context}: `{key}` is not a boolean"))
}

/// The rows of one sweep section of the snapshot.
fn rows<'a>(bench: &'a Value, sweep: &str) -> &'a [Value] {
    bench
        .get("sweeps")
        .and_then(|sweeps| sweeps.get(sweep))
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("snapshot has a `sweeps.{sweep}` array"))
}

/// Asserts a row is an object carrying exactly `expected` keys.
fn assert_exact_keys(row: &Value, expected: &[&str], context: &str) {
    let object = row.as_object().unwrap_or_else(|| panic!("{context}: row is not an object"));
    for key in expected {
        assert!(
            object.iter().any(|(k, _)| k == key),
            "{context}: missing field `{key}`"
        );
    }
    for (key, _) in object {
        assert!(
            expected.contains(&key.as_str()),
            "{context}: unexpected field `{key}` (schema change? update this test \
             and regenerate BENCH_PR9.json together)"
        );
    }
}

/// The scenario-level prediction fields every gated row carries.
const PREDICTION_FIELDS: [&str; 3] = ["predicted", "predicted_rounds", "model_in_domain"];

/// `ModelPrediction::json_fields` emits exactly the three fields the
/// snapshots key on, as a valid JSON fragment.
#[test]
fn prediction_json_fields_match_the_documented_names() {
    let prediction = predict(&Scenario::builder().group(6, 3).matching_rate(0.5).build());
    let wrapped: Value = serde_json::from_str(&format!("{{{}}}", prediction.json_fields()))
        .expect("json_fields is a valid JSON object body");
    assert_exact_keys(&wrapped, &PREDICTION_FIELDS, "json_fields");
    assert!(float(&wrapped, "predicted", "json_fields").is_finite());
    assert!(field(&wrapped, "predicted_rounds", "json_fields").as_u64().is_some());
    boolean(&wrapped, "model_in_domain", "json_fields");
}

#[test]
fn bench_pr9_snapshot_has_all_five_sweeps() {
    let bench = bench_pr9();
    assert_eq!(field(&bench, "pr", "snapshot").as_u64(), Some(9));
    assert!(float(&bench, "tolerance", "snapshot") > 0.0);
    for sweep in [
        "reliability_sweep",
        "partial_view_sweep",
        "churn_sweep",
        "adversarial_sweep",
        "scale_sweep",
    ] {
        assert!(!rows(&bench, sweep).is_empty(), "sweeps.{sweep} has rows");
    }
}

#[test]
fn reliability_sweep_rows_keep_their_schema() {
    let bench = bench_pr9();
    let expected: Vec<&str> = ["matching_rate", "delivery_simulated", "delivery_std",
        "delivery_analytical", "rounds"]
    .into_iter()
    .chain(PREDICTION_FIELDS)
    .collect();
    for (i, row) in rows(&bench, "reliability_sweep").iter().enumerate() {
        assert_exact_keys(row, &expected, &format!("reliability_sweep[{i}]"));
    }
}

#[test]
fn partial_view_sweep_rows_keep_their_schema() {
    let bench = bench_pr9();
    let expected: Vec<&str> = ["membership", "n", "entries", "pmcast", "flood", "genuine"]
        .into_iter()
        .chain(PREDICTION_FIELDS)
        .collect();
    for (i, row) in rows(&bench, "partial_view_sweep").iter().enumerate() {
        assert_exact_keys(row, &expected, &format!("partial_view_sweep[{i}]"));
    }
}

#[test]
fn churn_sweep_rows_keep_their_schema() {
    let bench = bench_pr9();
    let expected = [
        "workload", "n", "churn", "entries",
        "global", "global_predicted", "global_in_domain",
        "delegate", "delegate_predicted", "delegate_in_domain",
        "flat", "flat_predicted", "flat_in_domain",
    ];
    for (i, row) in rows(&bench, "churn_sweep").iter().enumerate() {
        assert_exact_keys(row, &expected, &format!("churn_sweep[{i}]"));
    }
}

#[test]
fn adversarial_sweep_rows_keep_their_schema() {
    let bench = bench_pr9();
    let per_provider: Vec<String> = ["global", "delegate", "flat"]
        .iter()
        .flat_map(|name| {
            ["", "_predicted", "_in_domain", "_lat_mean", "_lat_p99", "_latency"]
                .iter()
                .map(move |suffix| format!("{name}{suffix}"))
        })
        .collect();
    let mut expected = vec!["workload", "n", "publish_round", "entries"];
    expected.extend(per_provider.iter().map(String::as_str));
    for (i, row) in rows(&bench, "adversarial_sweep").iter().enumerate() {
        assert_exact_keys(row, &expected, &format!("adversarial_sweep[{i}]"));
    }
}

#[test]
fn scale_sweep_rows_keep_their_schema() {
    let bench = bench_pr9();
    let expected: Vec<&str> = ["n", "arity", "depth", "provider", "seconds_per_trial",
        "delivery_ratio", "rounds", "peak_rss_mb", "trials"]
    .into_iter()
    .chain(PREDICTION_FIELDS)
    .collect();
    for (i, row) in rows(&bench, "scale_sweep").iter().enumerate() {
        assert_exact_keys(row, &expected, &format!("scale_sweep[{i}]"));
    }
}

#[test]
fn snapshot_rows_respect_the_paper_tolerance() {
    // The snapshot is the paper-scale gate made durable: every in-domain
    // prediction in it must sit within the recorded tolerance of its
    // simulated value (flat rows at twice the base — invariant 9).
    let bench = bench_pr9();
    let tolerance = float(&bench, "tolerance", "snapshot");
    let mut gated = 0usize;

    let mut check = |label: String, simulated: f64, predicted: f64, scale: f64| {
        let budget = tolerance * scale;
        assert!(
            (simulated - predicted).abs() <= budget,
            "{label}: simulated {simulated} vs predicted {predicted} \
             exceeds tolerance {budget}"
        );
        gated += 1;
    };

    for (i, row) in rows(&bench, "reliability_sweep").iter().enumerate() {
        let context = format!("reliability_sweep[{i}]");
        if boolean(row, "model_in_domain", &context) {
            let simulated = float(row, "delivery_simulated", &context);
            let predicted = float(row, "predicted", &context);
            check(context, simulated, predicted, 1.0);
        }
    }
    for (i, row) in rows(&bench, "partial_view_sweep").iter().enumerate() {
        let context = format!("partial_view_sweep[{i}]");
        if boolean(row, "model_in_domain", &context) {
            let flat = field(row, "membership", &context)
                .as_str()
                .is_some_and(|m| m.starts_with("flat"));
            let simulated = float(row, "pmcast", &context);
            let predicted = float(row, "predicted", &context);
            check(context, simulated, predicted, if flat { 2.0 } else { 1.0 });
        }
    }
    for sweep in ["churn_sweep", "adversarial_sweep"] {
        for (i, row) in rows(&bench, sweep).iter().enumerate() {
            for provider in ["global", "delegate", "flat"] {
                let context = format!("{sweep}[{i}].{provider}");
                if boolean(row, &format!("{provider}_in_domain"), &context) {
                    let simulated = float(row, provider, &context);
                    let predicted = float(row, &format!("{provider}_predicted"), &context);
                    let scale = if provider == "flat" { 2.0 } else { 1.0 };
                    check(context, simulated, predicted, scale);
                }
            }
        }
    }
    for (i, row) in rows(&bench, "scale_sweep").iter().enumerate() {
        let context = format!("scale_sweep[{i}]");
        if boolean(row, "model_in_domain", &context) {
            let simulated = float(row, "delivery_ratio", &context);
            let predicted = float(row, "predicted", &context);
            check(context, simulated, predicted, 1.0);
        }
    }
    assert!(gated >= 10, "the paper snapshot gates a real row population, got {gated}");
}
