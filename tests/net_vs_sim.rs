//! Net-vs-sim conformance: the async runtime (`pmcast-net`) replays
//! `pmcast-sim` scenario trials and must agree with the round-synchronous
//! simulator — **the simulator is the oracle** (its seed contract is
//! frozen by golden tests; the runtime is the thing under test).
//!
//! The matrix is all three protocols × all three membership providers on
//! the 4-ary depth-2 conformance group (n = 16, as in
//! `tests/protocol_contract.rs`).  Three agreement levels:
//!
//! 1. **Loss-free**: per-process delivered event *sets* are bit-identical
//!    between the engines.  The runtime's gossip paths differ (private RNG
//!    streams), but with no loss both must reach exactly the interested
//!    processes.
//! 2. **Lossy**: per-trial outcomes legitimately differ (different loss
//!    streams), so mean delivery rates over a handful of trials must agree
//!    within the stated tolerance of 0.05.
//! 3. **Determinism**: the same `(scenario, trial)` through the runtime
//!    twice is bit-identical — seeded task/timer ordering, per the
//!    per-trial seed contract.

use pmcast::net::run_net_scenario_trial;
use pmcast::sim::runner::run_scenario_trial_states;
use pmcast::{
    Event, FloodFactory, GenuineFactory, MembershipSpec, MulticastProtocol, PmcastFactory,
    ProtocolFactory, Publisher, Scenario, ScenarioBuilder,
};

/// Mean-delivery-rate tolerance between the engines under loss.
const LOSSY_TOLERANCE: f64 = 0.05;

/// The conformance group: 4-ary, depth 2 — 16 processes.
fn conformance_scenario(membership: MembershipSpec) -> ScenarioBuilder {
    Scenario::builder()
        .group(4, 2)
        .matching_rate(0.5)
        .membership(membership)
        .publish(Publisher::Interested, Event::builder(1).int("b", 1).build())
        .publish_at(1, Publisher::Process(3), Event::builder(2).int("b", 2).build())
        .seed(9)
}

/// The provider axis of the matrix (mirrors `tests/protocol_contract.rs`:
/// global knowledge, a full-knowledge partial view, full-knowledge
/// delegate tables).
fn providers() -> [MembershipSpec; 3] {
    [
        MembershipSpec::Global,
        MembershipSpec::partial(15),
        MembershipSpec::delegate(4),
    ]
}

/// Loss-free agreement for one factory: the delivered set of every event
/// at every process matches the simulator bit for bit.
fn assert_lossfree_sets_identical<F: ProtocolFactory>(name: &str)
where
    F::Process: 'static,
{
    for membership in providers() {
        let scenario = conformance_scenario(membership).build();
        let (sim_outcome, sim_states) = run_scenario_trial_states::<F>(&scenario, 0);
        let net_outcome = run_net_scenario_trial::<F>(&scenario, 0);
        let events: Vec<Event> = scenario
            .publications
            .iter()
            .map(|p| p.event.clone())
            .collect();
        assert_eq!(net_outcome.reports.len(), sim_states.len(), "{name}/{membership:?}");
        for (index, (net, sim)) in net_outcome
            .reports
            .iter()
            .map(|r| &r.state)
            .zip(sim_states.iter())
            .enumerate()
        {
            for event in &events {
                assert_eq!(
                    net.has_delivered(event.id()),
                    sim.has_delivered(event.id()),
                    "{name}/{membership:?}: delivered({}) diverges at process {index}",
                    event.id(),
                );
            }
        }
        // Per-event reports therefore agree too — check the merged one as
        // a belt-and-braces summary.
        assert_eq!(
            net_outcome.report.delivery_ratio(),
            sim_outcome.report.delivery_ratio(),
            "{name}/{membership:?}"
        );
    }
}

#[test]
fn lossfree_delivered_sets_are_bit_identical_across_engines() {
    assert_lossfree_sets_identical::<PmcastFactory>("pmcast");
    assert_lossfree_sets_identical::<FloodFactory>("flood-broadcast");
    assert_lossfree_sets_identical::<GenuineFactory>("genuine-multicast");
}

/// Lossy agreement for one factory: mean delivery rates within tolerance.
fn assert_lossy_rates_agree<F: ProtocolFactory>(name: &str)
where
    F::Process: 'static,
{
    const TRIALS: usize = 4;
    for membership in providers() {
        let scenario = conformance_scenario(membership).loss(0.05).build();
        let mut sim_mean = 0.0;
        let mut net_mean = 0.0;
        for trial in 0..TRIALS {
            let (sim_outcome, _) = run_scenario_trial_states::<F>(&scenario, trial);
            let net_outcome = run_net_scenario_trial::<F>(&scenario, trial);
            sim_mean += sim_outcome.report.delivery_ratio();
            net_mean += net_outcome.report.delivery_ratio();
        }
        sim_mean /= TRIALS as f64;
        net_mean /= TRIALS as f64;
        assert!(
            (sim_mean - net_mean).abs() <= LOSSY_TOLERANCE,
            "{name}/{membership:?}: net mean delivery {net_mean:.3} strays more than \
             {LOSSY_TOLERANCE} from the simulator's {sim_mean:.3}"
        );
    }
}

#[test]
fn lossy_delivery_rates_agree_within_tolerance() {
    assert_lossy_rates_agree::<PmcastFactory>("pmcast");
    assert_lossy_rates_agree::<FloodFactory>("flood-broadcast");
    assert_lossy_rates_agree::<GenuineFactory>("genuine-multicast");
}

#[test]
fn net_runtime_is_deterministic_per_trial_seed() {
    // Lossy + partial views: the most stream-hungry configuration.  Two
    // runs of the same trial must agree on everything observable.
    let scenario = conformance_scenario(MembershipSpec::partial(15))
        .loss(0.1)
        .build();
    let first = run_net_scenario_trial::<PmcastFactory>(&scenario, 2);
    let second = run_net_scenario_trial::<PmcastFactory>(&scenario, 2);
    assert_eq!(first.report, second.report);
    assert_eq!(first.per_event, second.per_event);
    assert_eq!(first.rounds, second.rounds);
    assert_eq!(first.transport.frames_sent, second.transport.frames_sent);
    assert_eq!(first.transport.frames_lost, second.transport.frames_lost);
    for (a, b) in first.reports.iter().zip(second.reports.iter()) {
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.crashed, b.crashed);
    }
}

#[test]
fn net_runtime_crashes_processes_mid_stream_like_the_simulator() {
    // A crash schedule through the conformance runner: the crashed process
    // must be flagged, and dissemination must still reach the surviving
    // audience (flooding, loss-free: everyone else delivers).
    let scenario = Scenario::builder()
        .group(4, 2)
        .matching_rate(1.0)
        .publish(Publisher::Process(0), Event::builder(7).int("b", 1).build())
        .crash_at(2, 5)
        .seed(11)
        .build();
    let outcome = run_net_scenario_trial::<FloodFactory>(&scenario, 0);
    assert!(outcome.reports[5].crashed, "the scheduled crash must land");
    assert_eq!(
        outcome.reports.iter().filter(|r| r.crashed).count(),
        1,
        "exactly one process crashes"
    );
    let event_id = scenario.publications[0].event.id();
    for (index, report) in outcome.reports.iter().enumerate() {
        if !report.crashed {
            assert!(
                report.state.has_delivered(event_id),
                "live process {index} must still deliver after the crash"
            );
        }
    }
}
