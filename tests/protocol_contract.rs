//! Generic conformance suite for the [`MulticastProtocol`] /
//! [`ProtocolFactory`] contract, instantiated for all three protocols.
//!
//! Every protocol behind the trait must uphold the same observable
//! contract, checked by one generic function per property:
//!
//! * publish-then-quiescence delivers to every interested non-crashed
//!   process on a loss-free network;
//! * duplicate receipt of the same event is deduplicated (publishing the
//!   same event twice is bit-identical to publishing it once);
//! * no process ever *delivers* an event it is not interested in, and the
//!   interest-aware protocols (pmcast, genuine multicast) keep spurious
//!   *reception* within their guarantees;
//! * the group is built in dense-identifier order, with trait addresses
//!   matching the topology's member order.

use std::sync::Arc;

use pmcast::{
    Address, AddressSpace, AssignmentOracle, Event, FloodFactory, GenuineFactory,
    ImplicitRegularTree, InterestOracle, MulticastProtocol, NetworkConfig, PmcastConfig,
    PmcastFactory, ProcessId, ProtocolFactory, Simulation, TreeTopology,
};

fn topology() -> ImplicitRegularTree {
    ImplicitRegularTree::new(AddressSpace::regular(2, 4).expect("valid shape"))
}

/// Subtrees 0 and 1 are interested: 8 of 16 processes, publisher 0.0 among
/// them.
fn half_interested_oracle() -> Arc<AssignmentOracle> {
    let interested: Vec<Address> = (0..2u32)
        .flat_map(|hi| (0..4u32).map(move |lo| Address::from(vec![hi, lo])))
        .collect();
    Arc::new(AssignmentOracle::new(interested))
}

/// Builds a group, publishes `copies` clones of one shared event from
/// process 0, runs to quiescence and returns the final states plus the
/// message count.
fn publish_and_run<F: ProtocolFactory>(copies: usize) -> (Vec<F::Process>, Event, u64) {
    let topology = topology();
    let oracle = half_interested_oracle();
    let group = F::build(&topology, oracle, &PmcastConfig::default());
    assert_eq!(group.processes.len(), 16);
    let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(71));
    let event = Event::builder(40).int("b", 2).build();
    let shared = Arc::new(event.clone());
    for _ in 0..copies {
        sim.process_mut(ProcessId(0)).publish(Arc::clone(&shared));
    }
    sim.run_until_quiescent(300);
    let messages = sim.stats().messages_sent;
    (sim.into_processes(), event, messages)
}

fn assert_delivers_to_every_interested_process<F: ProtocolFactory>(name: &str) {
    let oracle = half_interested_oracle();
    let (processes, event, _) = publish_and_run::<F>(1);
    for process in &processes {
        if oracle.is_interested(process.address(), &event) {
            assert!(
                process.has_delivered(event.id()),
                "{name}: {} is interested but did not deliver",
                process.address()
            );
            assert!(process.has_received(event.id()), "{name}: delivered implies received");
        }
    }
}

fn assert_duplicate_publish_is_deduplicated<F: ProtocolFactory>(name: &str) {
    let (once, event, messages_once) = publish_and_run::<F>(1);
    let (twice, _, messages_twice) = publish_and_run::<F>(2);
    assert_eq!(
        messages_once, messages_twice,
        "{name}: a duplicate publish must be ignored, not re-gossiped"
    );
    for (a, b) in once.iter().zip(twice.iter()) {
        assert_eq!(
            a.has_delivered(event.id()),
            b.has_delivered(event.id()),
            "{name}: duplicate publish changed delivery at {}",
            a.address()
        );
    }
}

fn assert_no_delivery_without_interest<F: ProtocolFactory>(
    name: &str,
    never_receives_uninterested: bool,
) {
    let oracle = half_interested_oracle();
    let (processes, event, _) = publish_and_run::<F>(1);
    for process in &processes {
        if !oracle.is_interested(process.address(), &event) {
            assert!(
                !process.has_delivered(event.id()),
                "{name}: {} delivered without interest",
                process.address()
            );
            if never_receives_uninterested {
                assert!(
                    !process.has_received(event.id()),
                    "{name}: {} received the event despite the protocol's \
                     no-spurious-reception guarantee",
                    process.address()
                );
            }
        }
    }
}

fn assert_group_order_matches_topology<F: ProtocolFactory>(name: &str) {
    let topology = topology();
    let group = F::build(&topology, half_interested_oracle(), &PmcastConfig::default());
    let members = topology.members();
    assert_eq!(*group.addresses, members, "{name}");
    for (process, address) in group.processes.iter().zip(members.iter()) {
        assert_eq!(process.address(), address, "{name}");
    }
}

/// The whole contract for one protocol.
fn assert_contract<F: ProtocolFactory>(name: &str, never_receives_uninterested: bool) {
    assert_delivers_to_every_interested_process::<F>(name);
    assert_duplicate_publish_is_deduplicated::<F>(name);
    assert_no_delivery_without_interest::<F>(name, never_receives_uninterested);
    assert_group_order_matches_topology::<F>(name);
}

#[test]
fn pmcast_satisfies_the_multicast_contract() {
    // pmcast is interest-aware but delegates of interested subtrees may
    // receive events they do not deliver, so spurious reception is allowed
    // (bounded — that is Figure 5's subject, not this contract's).
    assert_contract::<PmcastFactory>("pmcast", false);
}

#[test]
fn flood_broadcast_satisfies_the_multicast_contract() {
    // Flooding is interest-oblivious: uninterested processes receive (and
    // forward) events, they just never deliver them.
    assert_contract::<FloodFactory>("flood-broadcast", false);
}

#[test]
fn genuine_multicast_satisfies_the_multicast_contract() {
    // Genuine multicast never even contacts uninterested processes.
    assert_contract::<GenuineFactory>("genuine-multicast", true);
}

#[test]
fn registration_hook_is_idempotent_and_sufficient() {
    // Pre-registering on one process, then publishing from another, works
    // for every protocol (it is how the genuine directory is shared).
    fn check<F: ProtocolFactory>(name: &str) {
        let topology = topology();
        let oracle = half_interested_oracle();
        let group = F::build(&topology, oracle.clone(), &PmcastConfig::default());
        let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(5));
        let event = Event::builder(41).int("b", 3).build();
        sim.process_mut(ProcessId(3)).register_event(&event);
        sim.process_mut(ProcessId(3)).register_event(&event);
        sim.process_mut(ProcessId(0)).publish(Arc::new(event.clone()));
        sim.run_until_quiescent(300);
        for process in sim.processes() {
            assert_eq!(
                process.has_delivered(event.id()),
                oracle.is_interested(process.address(), &event),
                "{name}: {}",
                process.address()
            );
        }
    }
    check::<PmcastFactory>("pmcast");
    check::<FloodFactory>("flood-broadcast");
    check::<GenuineFactory>("genuine-multicast");
}
