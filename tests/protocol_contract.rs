//! Generic conformance suite for the [`MulticastProtocol`] /
//! [`ProtocolFactory`] contract, instantiated for all three protocols
//! **under every membership provider** ([`GlobalOracleView`],
//! [`PartialView`] and the hierarchical [`DelegateView`]).
//!
//! Every protocol behind the trait must uphold the same observable
//! contract, checked by one generic function per property:
//!
//! * publish-then-quiescence delivers to every interested non-crashed
//!   process on a loss-free network;
//! * duplicate receipt of the same event is deduplicated (publishing the
//!   same event twice is bit-identical to publishing it once);
//! * no process ever *delivers* an event it is not interested in, and the
//!   interest-aware protocols (pmcast, genuine multicast) keep spurious
//!   *reception* within their guarantees;
//! * the group is built in dense-identifier order, with trait addresses
//!   matching the topology's member order.
//!
//! The partial-view and delegate-view instantiations run the contract with
//! full-knowledge bounds (every peer discoverable), which must preserve the
//! exact guarantees; smaller views trade delivery for knowledge — that
//! regime is covered by the scenario-level tests at the bottom and by
//! `examples/partial_view_sweep.rs`.  A scenario-level lifecycle test runs
//! the three-protocol × three-provider matrix under a **mixed
//! join/leave/crash schedule** (including joins into a subgroup that
//! starts empty), and an adversarial sibling runs the same matrix under
//! **combined per-link delay, a healing partition and a straggler** (plus
//! a golden asserting that declaring every fault axis with its neutral
//! value stays bit-identical to declaring none).  Three deterministic
//! proptests assert the membership
//! layer's own invariants: a [`PartialView`] under the default churn-free
//! scenario converges to (and never leaves) a connected overlay with every
//! live process reachable, and a [`DelegateView`] under crash/unsubscribe
//! churn — bootstrapped over the full tree *or* a sparse population —
//! re-elects delegates so that every occupied subtree keeps at least one
//! live seated delegate.

use std::collections::VecDeque;
use std::sync::Arc;

use pmcast::{
    Address, AddressSpace, AssignmentOracle, DelegateView, DelegateViewConfig, Event,
    FloodFactory, GenuineFactory, GlobalOracleView, ImplicitRegularTree, InterestOracle,
    InterestRouting, MembershipSpec, MembershipView, MulticastProtocol, NetworkConfig,
    PartialView, PartialViewConfig, PmcastConfig, PmcastFactory, Prefix, ProcessId, Protocol,
    ProtocolFactory, Publisher, Scenario, Simulation, TopicOracle, TopicWorkload, TreeTopology,
    TOPIC_ATTRIBUTE,
};
use proptest::prelude::*;

const GROUP: usize = 16;

/// The membership providers the conformance suite is instantiated with.
#[derive(Clone, Copy, Debug)]
enum Provider {
    Global,
    /// A bounded gossip view large enough to have discovered every peer:
    /// the partial-view machinery with the same knowledge guarantees.
    PartialFull,
    /// The hierarchical delegate-table machinery with enough slots per
    /// subgroup (`slots = a`) to seat every subgroup member: full knowledge
    /// through the Section 2 view-table structure.
    DelegateFull,
}

impl Provider {
    fn view(self, n: usize) -> Arc<dyn MembershipView> {
        match self {
            Provider::Global => Arc::new(GlobalOracleView::new(n)),
            Provider::PartialFull => Arc::new(PartialView::bootstrap(
                n,
                PartialViewConfig::default().with_view_size(n - 1),
                71,
            )),
            // The conformance topology is the regular 4-ary depth-2 tree.
            Provider::DelegateFull => Arc::new(DelegateView::bootstrap(
                4,
                2,
                DelegateViewConfig::default().with_slots(4),
                71,
            )),
        }
    }
}

const PROVIDERS: [Provider; 3] = [
    Provider::Global,
    Provider::PartialFull,
    Provider::DelegateFull,
];

fn topology() -> ImplicitRegularTree {
    ImplicitRegularTree::new(AddressSpace::regular(2, 4).expect("valid shape"))
}

/// Subtrees 0 and 1 are interested: 8 of 16 processes, publisher 0.0 among
/// them.
fn half_interested_oracle() -> Arc<AssignmentOracle> {
    let interested: Vec<Address> = (0..2u32)
        .flat_map(|hi| (0..4u32).map(move |lo| Address::from(vec![hi, lo])))
        .collect();
    Arc::new(AssignmentOracle::new(interested))
}

/// Builds a group, publishes `copies` clones of one shared event from
/// process 0, runs to quiescence and returns the final states plus the
/// message count.
fn publish_and_run<F: ProtocolFactory>(
    provider: Provider,
    copies: usize,
) -> (Vec<F::Process>, Event, u64) {
    let topology = topology();
    let oracle = half_interested_oracle();
    let group = F::build(&topology, oracle, provider.view(GROUP), &PmcastConfig::default());
    assert_eq!(group.processes.len(), GROUP);
    let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(71));
    let event = Event::builder(40).int("b", 2).build();
    let shared = Arc::new(event.clone());
    for _ in 0..copies {
        sim.process_mut(ProcessId(0)).publish(Arc::clone(&shared));
    }
    sim.run_until_quiescent(300);
    let messages = sim.stats().messages_sent;
    (sim.into_processes(), event, messages)
}

fn assert_delivers_to_every_interested_process<F: ProtocolFactory>(
    name: &str,
    provider: Provider,
) {
    let oracle = half_interested_oracle();
    let (processes, event, _) = publish_and_run::<F>(provider, 1);
    for process in &processes {
        if oracle.is_interested(process.address(), &event) {
            assert!(
                process.has_delivered(event.id()),
                "{name}/{provider:?}: {} is interested but did not deliver",
                process.address()
            );
            assert!(
                process.has_received(event.id()),
                "{name}/{provider:?}: delivered implies received"
            );
        }
    }
}

fn assert_duplicate_publish_is_deduplicated<F: ProtocolFactory>(name: &str, provider: Provider) {
    let (once, event, messages_once) = publish_and_run::<F>(provider, 1);
    let (twice, _, messages_twice) = publish_and_run::<F>(provider, 2);
    assert_eq!(
        messages_once, messages_twice,
        "{name}/{provider:?}: a duplicate publish must be ignored, not re-gossiped"
    );
    for (a, b) in once.iter().zip(twice.iter()) {
        assert_eq!(
            a.has_delivered(event.id()),
            b.has_delivered(event.id()),
            "{name}/{provider:?}: duplicate publish changed delivery at {}",
            a.address()
        );
    }
}

fn assert_no_delivery_without_interest<F: ProtocolFactory>(
    name: &str,
    provider: Provider,
    never_receives_uninterested: bool,
) {
    let oracle = half_interested_oracle();
    let (processes, event, _) = publish_and_run::<F>(provider, 1);
    for process in &processes {
        if !oracle.is_interested(process.address(), &event) {
            assert!(
                !process.has_delivered(event.id()),
                "{name}/{provider:?}: {} delivered without interest",
                process.address()
            );
            if never_receives_uninterested {
                assert!(
                    !process.has_received(event.id()),
                    "{name}/{provider:?}: {} received the event despite the protocol's \
                     no-spurious-reception guarantee",
                    process.address()
                );
            }
        }
    }
}

fn assert_group_order_matches_topology<F: ProtocolFactory>(name: &str, provider: Provider) {
    let topology = topology();
    let group = F::build(
        &topology,
        half_interested_oracle(),
        provider.view(GROUP),
        &PmcastConfig::default(),
    );
    let members = topology.members();
    assert_eq!(*group.addresses, members, "{name}/{provider:?}");
    for (process, address) in group.processes.iter().zip(members.iter()) {
        assert_eq!(process.address(), address, "{name}/{provider:?}");
    }
}

/// The whole contract for one protocol, under every membership provider.
fn assert_contract<F: ProtocolFactory>(name: &str, never_receives_uninterested: bool) {
    for provider in PROVIDERS {
        assert_delivers_to_every_interested_process::<F>(name, provider);
        assert_duplicate_publish_is_deduplicated::<F>(name, provider);
        assert_no_delivery_without_interest::<F>(name, provider, never_receives_uninterested);
        assert_group_order_matches_topology::<F>(name, provider);
    }
}

#[test]
fn pmcast_satisfies_the_multicast_contract() {
    // pmcast is interest-aware but delegates of interested subtrees may
    // receive events they do not deliver, so spurious reception is allowed
    // (bounded — that is Figure 5's subject, not this contract's).
    assert_contract::<PmcastFactory>("pmcast", false);
}

#[test]
fn flood_broadcast_satisfies_the_multicast_contract() {
    // Flooding is interest-oblivious: uninterested processes receive (and
    // forward) events, they just never deliver them.
    assert_contract::<FloodFactory>("flood-broadcast", false);
}

#[test]
fn genuine_multicast_satisfies_the_multicast_contract() {
    // Genuine multicast never even contacts uninterested processes.
    assert_contract::<GenuineFactory>("genuine-multicast", true);
}

#[test]
fn registration_hook_is_idempotent_and_sufficient() {
    // Pre-registering on one process, then publishing from another, works
    // for every protocol (it is how the genuine directory is shared).
    fn check<F: ProtocolFactory>(name: &str, provider: Provider) {
        let topology = topology();
        let oracle = half_interested_oracle();
        let group = F::build(
            &topology,
            oracle.clone(),
            provider.view(GROUP),
            &PmcastConfig::default(),
        );
        let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(5));
        let event = Event::builder(41).int("b", 3).build();
        sim.process_mut(ProcessId(3)).register_event(&event);
        sim.process_mut(ProcessId(3)).register_event(&event);
        sim.process_mut(ProcessId(0)).publish(Arc::new(event.clone()));
        sim.run_until_quiescent(300);
        for process in sim.processes() {
            assert_eq!(
                process.has_delivered(event.id()),
                oracle.is_interested(process.address(), &event),
                "{name}/{provider:?}: {}",
                process.address()
            );
        }
    }
    for provider in PROVIDERS {
        check::<PmcastFactory>("pmcast", provider);
        check::<FloodFactory>("flood-broadcast", provider);
        check::<GenuineFactory>("genuine-multicast", provider);
    }
}

#[test]
fn small_partial_views_still_disseminate_through_the_scenario_engine() {
    // The genuinely partial regime: 216 processes that each know at most 12
    // peers, membership gossip running alongside the dissemination.  The
    // guarantees soften (that is the research point), but the flooding
    // broadcast — lpbcast's own shape — must still reach the vast majority
    // of its audience, and the run must stay deterministic in parallel.
    let scenario = Scenario::builder()
        .group(6, 3)
        .matching_rate(0.5)
        .membership(MembershipSpec::partial(12))
        .publish(Publisher::Interested, Event::builder(1).int("b", 1).build())
        .trials(2)
        .seed(3)
        .build();
    // Partial knowledge costs the protocols differently — which is the
    // research point.  Flooding (lpbcast's own shape: gossip to your view)
    // barely notices; the genuine baseline loses the audience members it
    // does not know; pmcast suffers most because its tree delegates are
    // mostly outside a 12-peer view until gossip discovers them.
    let floor = [
        (Protocol::Pmcast, 0.1),
        (Protocol::FloodBroadcast, 0.9),
        (Protocol::GenuineMulticast, 0.3),
    ];
    let delivery_mean = |outcomes: &[pmcast::TrialOutcome]| -> f64 {
        outcomes.iter().map(|o| o.report.delivery_ratio()).sum::<f64>() / outcomes.len() as f64
    };
    let mut narrow_pmcast_mean = 0.0;
    for (protocol, floor) in floor {
        let outcomes = scenario.run(protocol);
        for outcome in &outcomes {
            assert!(outcome.messages_sent > 0, "{protocol:?}");
            assert!(
                outcome.report.delivery_ratio() > floor,
                "{protocol:?} collapsed under partial views: {:?}",
                outcome.report
            );
        }
        if protocol == Protocol::Pmcast {
            narrow_pmcast_mean = delivery_mean(&outcomes);
        }
        if protocol == Protocol::FloodBroadcast {
            // Flooding over a 12-peer view behaves like lpbcast: near-total
            // delivery.
            assert!(
                outcomes[0].report.delivery_ratio() > 0.95,
                "{:?}",
                outcomes[0].report
            );
        }
        assert_eq!(
            outcomes,
            scenario.run_parallel(protocol),
            "{protocol:?}: partial-view trials must stay deterministic in parallel"
        );
    }
    // Widening the views restores pmcast's reliability — the
    // reliability-vs-view-size curve of examples/partial_view_sweep.rs.
    let wide = Scenario::builder()
        .group(6, 3)
        .matching_rate(0.5)
        .membership(MembershipSpec::partial(128))
        .publish(Publisher::Interested, Event::builder(1).int("b", 1).build())
        .trials(2)
        .seed(3)
        .build();
    let wide_mean = delivery_mean(&wide.run(Protocol::Pmcast));
    assert!(
        wide_mean > narrow_pmcast_mean + 0.2,
        "wider views must recover pmcast reliability ({narrow_pmcast_mean:.3} -> {wide_mean:.3})"
    );
}

#[test]
fn delegate_views_restore_pmcast_reliability_at_bounded_size() {
    // The PR 4 acceptance bar, at quick scale: under the hierarchical
    // `DelegateView` pmcast's delivery stays within 0.05 of the
    // global-knowledge curve at a *bounded* view size — the same regime in
    // which the flat `PartialView` collapses (its bounded random sample
    // rarely contains pmcast's tree delegates).  And the delegate-view
    // trials must stay bit-identical under the parallel runner.
    let scenario_with = |membership: MembershipSpec| {
        Scenario::builder()
            .group(6, 3)
            .matching_rate(0.5)
            .membership(membership)
            .publish(Publisher::Interested, Event::builder(1).int("b", 1).build())
            .trials(2)
            .seed(3)
            .build()
    };
    let delivery_mean = |outcomes: &[pmcast::TrialOutcome]| -> f64 {
        outcomes.iter().map(|o| o.report.delivery_ratio()).sum::<f64>() / outcomes.len() as f64
    };
    let global = delivery_mean(&scenario_with(MembershipSpec::Global).run(Protocol::Pmcast));

    // The delegate view's bound: (d−1)·a·slots + a = 42 entries, a fifth of
    // the 216-process group.
    let entries = DelegateViewConfig::default().with_slots(3).table_entries(6, 3);
    assert!(entries * 5 < 216, "the delegate view must be genuinely bounded");
    let delegate_scenario = scenario_with(MembershipSpec::delegate(3));
    let delegate_outcomes = delegate_scenario.run(Protocol::Pmcast);
    let delegate = delivery_mean(&delegate_outcomes);
    assert!(
        (global - delegate).abs() <= 0.05,
        "delegate-view pmcast ({delegate:.3}) must track the global curve ({global:.3})"
    );
    assert_eq!(
        delegate_outcomes,
        delegate_scenario.run_parallel(Protocol::Pmcast),
        "delegate-view trials must stay deterministic in parallel"
    );

    // Same bounded size, flat shape: the documented gap.  The contrast is
    // sharpest at tight bounds, so compare at the one-slot delegate size
    // ((d−1)·a·1 + a = 18 entries, a twelfth of the group); at paper scale
    // the flat curve collapses outright (examples/partial_view_sweep.rs
    // -- --paper: 0.36 at ℓ = 512 vs 0.998 for delegate R = 3).
    let tight = DelegateViewConfig::default().with_slots(1).table_entries(6, 3);
    let delegate_tight = delivery_mean(
        &scenario_with(MembershipSpec::delegate(1)).run(Protocol::Pmcast),
    );
    let flat_tight = delivery_mean(
        &scenario_with(MembershipSpec::partial(tight)).run(Protocol::Pmcast),
    );
    assert!(
        flat_tight < delegate_tight - 0.2,
        "an equally sized flat view ({flat_tight:.3}) must trail the hierarchy \
         ({delegate_tight:.3}) at {tight} entries"
    );

    // The other two protocols still disseminate through delegate views.
    for protocol in [Protocol::FloodBroadcast, Protocol::GenuineMulticast] {
        for outcome in delegate_scenario.run(protocol) {
            assert!(outcome.messages_sent > 0, "{protocol:?}");
            assert!(
                outcome.report.delivery_ratio() > 0.3,
                "{protocol:?} collapsed under delegate views: {:?}",
                outcome.report
            );
        }
    }
}

#[test]
fn conformance_holds_under_mixed_join_leave_crash_schedules() {
    // The dynamic-lifecycle acceptance bar for the conformance suite: one
    // scenario mixing joins (including into a subgroup that starts empty),
    // graceful leaves and crashes runs on all three protocols under all
    // three membership providers — through the single generic trial loop,
    // deterministically in parallel — and the protocols keep disseminating
    // to the processes that are actually there.
    let scenario_with = |membership: MembershipSpec| {
        Scenario::builder()
            .group(4, 3) // 64 addresses
            .matching_rate(1.0)
            // Leaf subgroup 15 (indices 60..64) starts empty and fills at
            // round 2 — the flash-crowd corner the sparse bootstrap exists
            // for.
            .join_at(2, 60)
            .join_at(2, 61)
            .join_at(2, 62)
            .join_at(2, 63)
            // Graceful unsubscribes and a crash, spread over early rounds.
            .leave_at(3, 1)
            .leave_at(4, 17)
            .leave_at(5, 33)
            .crash_at(4, 9)
            // One event before the churn, one after the joins.
            .publish(Publisher::Process(0), Event::builder(1).int("b", 1).build())
            .publish_at(6, Publisher::Process(5), Event::builder(2).int("b", 2).build())
            .membership(membership)
            .trials(2)
            .seed(13)
            .build()
    };
    for membership in [
        MembershipSpec::Global,
        MembershipSpec::partial(31),
        MembershipSpec::delegate(4),
    ] {
        let scenario = scenario_with(membership);
        let sizes = scenario.population_sizes();
        assert_eq!((sizes.initial, sizes.peak, sizes.end), (60, 64, 61));
        for protocol in [
            Protocol::Pmcast,
            Protocol::FloodBroadcast,
            Protocol::GenuineMulticast,
        ] {
            let outcomes = scenario.run(protocol);
            for outcome in &outcomes {
                assert!(outcome.messages_sent > 0, "{protocol:?}/{membership:?}");
                assert_eq!(outcome.per_event.len(), 2, "{protocol:?}/{membership:?}");
                // The round-6 event starts after the churn settles: the
                // joiners are up, and the audience that is actually present
                // is reached in bulk by every protocol under every provider.
                let late = &outcome.per_event[1];
                assert!(
                    late.delivery_ratio() > 0.5,
                    "{protocol:?}/{membership:?}: post-churn event collapsed: {late:?}"
                );
            }
            assert_eq!(
                outcomes,
                scenario.run_parallel(protocol),
                "{protocol:?}/{membership:?}: lifecycle trials must stay deterministic \
                 in parallel"
            );
        }
    }
}

#[test]
fn conformance_holds_under_combined_adversarial_faults() {
    // The adversarial-fault acceptance bar: one scenario combining jittered
    // per-link delay, a healing partition and a straggling process runs on
    // all three protocols under all three membership providers — through
    // the single generic trial loop, deterministically in parallel — and
    // dissemination recovers once the partition heals.
    let scenario_with = |membership: MembershipSpec| {
        Scenario::builder()
            .group(4, 3) // 64 addresses
            .matching_rate(1.0)
            .link_delay(0, 1)
            .partition(0, 6, 4) // four cells until the heal at round 6
            .straggler(3, 2)
            // One event into the partitioned network, one after the heal.
            .publish(Publisher::Process(0), Event::builder(1).int("b", 1).build())
            .publish_at(8, Publisher::Process(5), Event::builder(2).int("b", 2).build())
            .membership(membership)
            .trials(2)
            .seed(23)
            .build()
    };
    for membership in [
        MembershipSpec::Global,
        MembershipSpec::partial(31),
        MembershipSpec::delegate(4),
    ] {
        let scenario = scenario_with(membership);
        for protocol in [
            Protocol::Pmcast,
            Protocol::FloodBroadcast,
            Protocol::GenuineMulticast,
        ] {
            let outcomes = scenario.run(protocol);
            for outcome in &outcomes {
                assert!(outcome.messages_sent > 0, "{protocol:?}/{membership:?}");
                assert_eq!(outcome.per_event.len(), 2, "{protocol:?}/{membership:?}");
                assert_eq!(outcome.latency.len(), 2, "{protocol:?}/{membership:?}");
                // The post-heal event faces only delay + straggler: its
                // audience is reached in bulk by every protocol under every
                // provider.
                let late = &outcome.per_event[1];
                assert!(
                    late.delivery_ratio() > 0.5,
                    "{protocol:?}/{membership:?}: post-heal event collapsed: {late:?}"
                );
                // Jittered links keep the latency histogram honest: every
                // delivery of the late event is accounted for.
                assert_eq!(
                    outcome.latency[1].delivered(),
                    late.delivered_interested as u64,
                    "{protocol:?}/{membership:?}"
                );
            }
            assert_eq!(
                outcomes,
                scenario.run_parallel(protocol),
                "{protocol:?}/{membership:?}: adversarial trials must stay \
                 deterministic in parallel"
            );
        }
    }
}

#[test]
fn neutral_fault_plans_reproduce_the_faultless_engine_bit_for_bit() {
    // The stream-neutrality golden: declaring every fault axis with its
    // neutral value (zero delay, single-cell and empty-window partitions, a
    // zero-probability loss override, a period-1 straggler) must produce
    // outcomes bit-identical to a scenario declaring no fault plan at all —
    // on every protocol, including the loss and crash streams.
    let base = || {
        Scenario::builder()
            .group(4, 3)
            .matching_rate(0.6)
            .loss(0.05)
            .crash_fraction(0.05)
            .trials(2)
            .seed(13)
    };
    let plain = base().build();
    let neutral = base()
        .link_delay(0, 0)
        .partition(5, 5, 4)
        .partition(2, 9, 1)
        .subtree_loss(&[1], 0.0)
        .straggler(2, 1)
        .build();
    for protocol in [
        Protocol::Pmcast,
        Protocol::FloodBroadcast,
        Protocol::GenuineMulticast,
    ] {
        assert_eq!(
            plain.run(protocol),
            neutral.run(protocol),
            "{protocol:?}: a neutral fault plan shifted a random stream"
        );
    }
}

#[test]
fn multi_topic_traffic_keeps_the_contract_with_hundreds_in_flight() {
    // The heavy-traffic conformance row: 64 processes, 24 overlapping
    // topics, 300 events spread over 30 publish rounds — hundreds of
    // events concurrently in flight across distinct audiences, under the
    // delegate hierarchy that carries the aggregated interest summaries.
    let scenario_with = |routing: InterestRouting, membership: MembershipSpec| {
        Scenario::builder()
            .group(4, 3) // 64 addresses
            .topics(TopicWorkload::new(24, 3, 300).with_publish_rounds(30))
            .membership(membership)
            .protocol(PmcastConfig::default().with_interest_routing(routing))
            .trials(1)
            .seed(29)
            .build()
    };

    // Genuine multicast resolves exact audiences, so under full knowledge
    // the topical contract is sharp even at this concurrency: every
    // subscriber delivers every event of its topics, and nobody else so
    // much as receives one.  (A bounded delegate view cannot promise this —
    // genuine needs to *know* each audience member it contacts.)
    for outcome in
        scenario_with(InterestRouting::Oracle, MembershipSpec::Global).run(Protocol::GenuineMulticast)
    {
        assert_eq!(outcome.per_event.len(), 300);
        assert_eq!(
            outcome.report.received_uninterested, 0,
            "genuine multicast leaked topical traffic: {:?}",
            outcome.report
        );
        assert_eq!(
            outcome.report.delivered_interested, outcome.report.interested,
            "a subscriber missed an event on a loss-free network: {:?}",
            outcome.report
        );
    }

    // pmcast: the aggregated-summary arm against the blind control arm.
    // Summaries only ever skip *provably* uninterested subtrees, so the
    // delivered reliability must match the blind run (the acceptance
    // tolerance), while spurious receptions and messages drop.
    let summary_scenario = scenario_with(InterestRouting::Summary, MembershipSpec::delegate(4));
    let summary = summary_scenario.run(Protocol::Pmcast);
    let blind =
        scenario_with(InterestRouting::Blind, MembershipSpec::delegate(4)).run(Protocol::Pmcast);
    let (s, b) = (&summary[0], &blind[0]);
    // ~0.89 is pmcast's level in this regime (matching rate 3/24 with no
    // audience-inflation tuning) — the point is that all three routing
    // modes sit at the *same* level, asserted tightly below.
    assert!(
        s.report.delivery_ratio() > 0.85,
        "summary routing lost reliability: {:?}",
        s.report
    );
    assert!(
        (s.report.delivery_ratio() - b.report.delivery_ratio()).abs() <= 0.01,
        "summary ({:.4}) and blind ({:.4}) reliability diverged",
        s.report.delivery_ratio(),
        b.report.delivery_ratio()
    );
    assert!(
        s.report.spurious_ratio() < b.report.spurious_ratio(),
        "summary routing must cut spurious receptions: {:.4} vs {:.4}",
        s.report.spurious_ratio(),
        b.report.spurious_ratio()
    );
    assert!(
        s.messages_sent < b.messages_sent,
        "skipping uninterested subtrees must also cut traffic: {} vs {}",
        s.messages_sent,
        b.messages_sent
    );
    assert_eq!(
        summary,
        summary_scenario.run_parallel(Protocol::Pmcast),
        "topical summary-routing trials must stay deterministic in parallel"
    );
}

/// Live-to-live reachability from process 0 over the view edges.
fn reachable_live(view: &PartialView, n: usize) -> usize {
    let start = (0..n).find(|&p| view.is_live(p)).expect("somebody is live");
    let mut seen = vec![false; n];
    let mut queue = VecDeque::from([start]);
    seen[start] = true;
    let mut count = 1;
    while let Some(process) = queue.pop_front() {
        for k in 0..view.peer_count(process) {
            let peer = view.peer_at(process, k);
            if view.is_live(peer) && !seen[peer] {
                seen[peer] = true;
                count += 1;
                queue.push_back(peer);
            }
        }
    }
    count
}

proptest! {
    /// Under the default churn-free scenario shape (n = 6³ = 216), a
    /// `PartialView` converges to — and never leaves — a connected overlay:
    /// after any number of gossip rounds, every live process is reachable
    /// from every other over view edges, for any seed and any admissible
    /// view size.
    #[test]
    fn partial_view_converges_to_a_connected_overlay(
        seed in 0u64..1_000_000,
        view_size in 4usize..32,
        rounds in 0usize..60,
    ) {
        let n = 216; // the default scenario group: arity 6, depth 3
        let config = PartialViewConfig::default().with_view_size(view_size);
        let view = PartialView::bootstrap(n, config, seed);
        for _ in 0..rounds {
            view.round_elapsed();
        }
        prop_assert_eq!(view.estimated_size(), n, "churn-free: everyone stays live");
        for process in 0..n {
            prop_assert!(view.peer_count(process) <= view_size.max(1));
        }
        prop_assert_eq!(reachable_live(&view, n), n);
    }

    /// Delegate re-election under churn: after any mix of crashes and
    /// unsubscriptions (bounded so a majority stays live) plus enough
    /// membership rounds for gossip to spread candidates, **every occupied
    /// subtree keeps at least one live seated delegate** in every live
    /// process's per-depth slot groups: the monitored sweep evicts dead
    /// delegates and re-election promotes gossiped candidates.
    #[test]
    fn delegate_re_election_keeps_live_delegates_per_occupied_subtree(
        seed in 0u64..1_000_000,
        churn in proptest::collection::vec((0usize..27, any::<bool>()), 0..8),
    ) {
        let view = DelegateView::bootstrap(
            3,
            3,
            DelegateViewConfig::default().with_slots(2),
            seed,
        );
        assert_delegate_cover_after_churn(&view, churn, 27 - 8);
    }

    /// The same invariant on **sparse** populations: bootstrap over a
    /// partially occupied tree (gap-aware seating), churn it, and every
    /// occupied subtree still keeps at least one live seated delegate in
    /// every live process's slot groups.
    #[test]
    fn gap_aware_re_election_keeps_live_delegates_on_sparse_populations(
        seed in 0u64..1_000_000,
        absent in proptest::collection::vec(0usize..27, 0..8),
        churn in proptest::collection::vec((0usize..27, any::<bool>()), 0..6),
    ) {
        // Punch at most 7 distinct occupancy gaps so a clear majority of
        // the 27 addresses stays occupied through bootstrap *and* churn.
        let mut occupied = vec![true; 27];
        for gap in absent {
            occupied[gap] = false;
        }
        let live_start = occupied.iter().filter(|&&o| o).count();
        let view = DelegateView::bootstrap_sparse(
            3,
            3,
            DelegateViewConfig::default().with_slots(2),
            seed,
            &occupied,
        );
        assert_delegate_cover_after_churn(&view, churn, live_start.saturating_sub(6));
    }
}

proptest! {
    /// The summary table's half of the skip contract, end-to-end from
    /// subscriptions to the routing question the fanout draw asks:
    /// aggregation up the tree stays an **over-approximation**.  Wherever
    /// the exact oracle knows a subscriber below a prefix, the merged
    /// summary must allow the event — a false negative here would make
    /// `InterestRouting::Summary` silently skip real audience members.  At
    /// leaf level the summary is the subscription filter itself, so it is
    /// exact (the table never degenerates into allow-everything).
    #[test]
    fn summary_aggregation_never_rules_out_a_subscriber(
        topic_count in 1u32..8,
        raw in proptest::collection::vec(
            proptest::collection::vec(0u32..8, 0..5),
            16,
        ),
    ) {
        const ARITY: usize = 4;
        const DEPTH: usize = 2;
        let space = AddressSpace::regular(DEPTH, ARITY as u32).unwrap();
        let subscriptions: Vec<Vec<u32>> = raw
            .into_iter()
            .map(|topics| topics.into_iter().map(|t| t % topic_count).collect())
            .collect();
        let oracle = TopicOracle::new(space.clone(), subscriptions.clone(), topic_count as usize);
        let summaries = oracle.subtree_summaries();
        let addresses: Vec<Address> = space.iter().collect();
        for topic in 0..topic_count {
            let event = Event::builder(1)
                .int(TOPIC_ATTRIBUTE, topic as i64)
                .build();
            for level in 0..=DEPTH {
                let span = ARITY.pow((DEPTH - level) as u32);
                for block in 0..ARITY.pow(level as u32) {
                    let base = block * span;
                    let prefix = Prefix::from_components(
                        addresses[base].components()[..level].to_vec(),
                    );
                    let subscribed = (base..base + span)
                        .any(|p| subscriptions[p].contains(&topic));
                    if subscribed {
                        prop_assert!(
                            summaries.allows(&prefix, &event),
                            "false negative: {prefix:?} holds a topic-{topic} subscriber"
                        );
                    } else if level == DEPTH {
                        prop_assert!(
                            !summaries.allows(&prefix, &event),
                            "leaf summaries must be exact: {prefix:?} vs topic {topic}"
                        );
                    }
                }
            }
        }
    }

    /// The same contract through the **runtime objects** a summary-routed
    /// trial actually uses: resolve a random topical trial workload, attach
    /// its summaries to the delegate membership view (exactly what the
    /// trial runner does), and check that for every scheduled event, no
    /// prefix on the root path of any interested process is ever ruled out
    /// by [`MembershipView::summary_allows`] — the question pmcast's fanout
    /// draw asks before skipping a subtree.  A false negative anywhere on
    /// that path would deterministically cut a subscriber off, which is why
    /// summary routing keeps the blind arm's reliability on the same seeds
    /// (asserted at fixed seed by the heavy-traffic row above: the noise on
    /// a 30-event proptest-sized sample is coarser than the ±0.01 bar).
    #[test]
    fn attached_summaries_never_rule_out_an_interested_process(
        seed in 0u64..10_000,
        topics in 1usize..6,
        subscriptions in 1usize..4,
    ) {
        const DEPTH: usize = 2;
        let subscriptions = subscriptions.min(topics);
        let scenario = Scenario::builder()
            .group(4, DEPTH) // 16 addresses
            .topics(TopicWorkload::new(topics, subscriptions, 30).with_publish_rounds(5))
            .membership(MembershipSpec::delegate(4))
            .protocol(PmcastConfig::default().with_interest_routing(InterestRouting::Summary))
            .trials(1)
            .seed(seed)
            .build();
        let workload = pmcast::sim::runner::trial_workload(&scenario, 0);
        let membership = workload.membership(&scenario);
        for (_, _, event) in &workload.schedule {
            for address in workload.topology.members() {
                if !workload.oracle.is_interested(&address, event) {
                    continue;
                }
                for level in 1..=DEPTH {
                    let prefix = Prefix::from_components(
                        address.components()[..level].to_vec(),
                    );
                    prop_assert!(
                        membership.summary_allows(&prefix, event),
                        "event {:?} skipped {prefix:?}, cutting off subscriber {address}",
                        event.id()
                    );
                }
            }
        }
    }
}

/// Applies a churn sequence (crash/leave per round), settles gossip, and
/// asserts that every live process still seats ≥ 1 live delegate for every
/// *occupied* subtree of every depth — the re-election invariant shared by
/// the full-population and sparse-population proptests (3-ary, depth 3).
fn assert_delegate_cover_after_churn(
    view: &DelegateView,
    churn: Vec<(usize, bool)>,
    min_live: usize,
) {
    const ARITY: usize = 3;
    const DEPTH: usize = 3;
    let n = ARITY.pow(DEPTH as u32); // 27
    for (victim, is_crash) in churn {
        if is_crash {
            view.observe_crash(victim);
        } else {
            view.observe_leave(victim);
        }
        view.round_elapsed();
    }
    // Settle: let gossip spread re-election candidates.
    for _ in 0..40 {
        view.round_elapsed();
    }
    let alive = |p: usize| view.is_live(p);
    assert!((0..n).filter(|&p| alive(p)).count() >= min_live);
    for q in (0..n).filter(|&p| alive(p)) {
        for depth in 1..=DEPTH {
            let span = ARITY.pow((DEPTH - depth + 1) as u32);
            let sub = ARITY.pow((DEPTH - depth) as u32);
            for g in 0..ARITY {
                let base = (q / span) * span + g * sub;
                let occupied = (base..base + sub).any(|m| m != q && alive(m));
                if occupied {
                    assert!(
                        !view.live_delegates_of(q, depth, g).is_empty(),
                        "process {q} lost all live delegates of depth-{depth} subgroup {g}"
                    );
                }
            }
        }
    }
}
