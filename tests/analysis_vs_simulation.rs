//! Cross-validation of the two halves of the reproduction: the analytical
//! model of Section 4 (pmcast-analysis) against the Monte-Carlo protocol
//! simulation (pmcast-core + pmcast-simnet), on small groups where both are
//! cheap to evaluate.

use pmcast::analysis::churn::ChurnProfile;
use pmcast::analysis::decentralized::{DecentralizedModel, ProviderShape};
use pmcast::analysis::markov::InfectionChain;
use pmcast::analysis::pittel;
use pmcast::analysis::tree::TreeModel;
use pmcast::analysis::views::view_size_report;
use pmcast::sim::runner::{run_experiment, ExperimentConfig};
use pmcast::{
    predict, EnvParams, Event, GroupParams, MembershipSpec, Protocol, Publisher, Scenario,
};

#[test]
fn simulation_and_model_agree_at_comfortable_matching_rates() {
    let config = ExperimentConfig::quick().with_trials(4).with_seed(2024);
    let model = TreeModel::new(
        GroupParams {
            arity: config.arity,
            depth: config.depth,
            redundancy: config.protocol.redundancy,
            fanout: config.protocol.fanout,
        },
        config.protocol.env,
    );
    for matching_rate in [0.4, 0.6, 0.9] {
        let simulated = run_experiment(&config.clone().with_matching_rate(matching_rate));
        let predicted = model.reliability(matching_rate);
        // The model is deliberately pessimistic (Section 4.3 neglects that a
        // depth usually starts with all R delegates already infected), so it
        // may under-predict the simulation by a noticeable margin but must
        // stay in the same regime and never over-promise by much.
        assert!(
            simulated.delivery_mean - predicted.reliability_degree > -0.1,
            "p_d = {matching_rate}: model over-promises ({} vs simulated {})",
            predicted.reliability_degree,
            simulated.delivery_mean
        );
        assert!(
            (simulated.delivery_mean - predicted.reliability_degree).abs() < 0.25,
            "p_d = {matching_rate}: simulated {} vs predicted {}",
            simulated.delivery_mean,
            predicted.reliability_degree
        );
        // Both halves agree delivery is likely (the pessimistic model with a
        // slightly lower bar).
        assert!(simulated.delivery_mean > 0.85);
        assert!(predicted.reliability_degree > 0.75);
    }
}

#[test]
fn both_halves_show_the_small_rate_degradation() {
    // The loss of reliability for very small matching rates (Section 5.1 /
    // 5.3) must be visible in the analysis and in the simulation alike.
    let config = ExperimentConfig::quick().with_trials(4).with_seed(7);
    let model = TreeModel::new(
        GroupParams {
            arity: config.arity,
            depth: config.depth,
            redundancy: config.protocol.redundancy,
            fanout: config.protocol.fanout,
        },
        config.protocol.env,
    );
    let tiny_sim = run_experiment(&config.clone().with_matching_rate(0.03));
    let comfy_sim = run_experiment(&config.clone().with_matching_rate(0.6));
    assert!(tiny_sim.delivery_mean < comfy_sim.delivery_mean);
    let tiny_model = model.reliability(0.03).reliability_degree;
    let comfy_model = model.reliability(0.6).reliability_degree;
    assert!(tiny_model < comfy_model);
}

#[test]
fn pittel_budget_matches_the_exact_markov_chain() {
    // Pittel's asymptote (used by the protocol) and the exact chain (used by
    // the analysis) must agree that the budgeted number of rounds infects
    // nearly the whole group, across a range of sizes and fanouts.
    let env = EnvParams::lossless();
    for &(n, fanout) in &[(30usize, 2.0f64), (100, 2.0), (100, 4.0), (400, 3.0)] {
        let budget = pittel::round_budget(n as f64, fanout, &env);
        let mut chain = InfectionChain::new(n, fanout, &env);
        chain.run(budget);
        let infected = chain.expected_infected();
        assert!(
            infected > 0.93 * n as f64,
            "n = {n}, F = {fanout}: {infected:.1} infected after {budget} rounds"
        );
    }
}

#[test]
fn losses_shift_both_the_budget_and_the_chain_consistently() {
    let clean = EnvParams::lossless();
    let lossy = EnvParams {
        loss_probability: 0.3,
        crash_probability: 0.02,
        pittel_constant: 1.0,
    };
    let budget_clean = pittel::round_budget(200.0, 3.0, &clean);
    let budget_lossy = pittel::round_budget(200.0, 3.0, &lossy);
    assert!(budget_lossy > budget_clean);

    // Running the lossy chain for the lossy budget still succeeds.
    let mut chain = InfectionChain::new(200, 3.0, &lossy);
    chain.run(budget_lossy);
    assert!(chain.expected_infected() > 0.9 * 200.0);
}

#[test]
fn view_size_model_matches_group_parameters() {
    // Eq. 2/12 against the GroupParams helper: the analytical view size for
    // the paper's configuration and the group size must be consistent.
    let group = GroupParams {
        arity: 22,
        depth: 3,
        redundancy: 3,
        fanout: 2,
    };
    let report = view_size_report(group.arity, group.depth, group.redundancy);
    assert_eq!(report.group_size, group.group_size());
    assert_eq!(report.tree_view_size, 154);
    assert!(report.reduction_factor > 60.0);
}

#[test]
fn provider_and_churn_matrix_stays_within_model_tolerance() {
    // The closed loop of invariant 9, as a matrix: {global oracle, paper
    // delegate tables, lpbcast-style flat views} × {static, 10% graceful
    // leaves} at the quick scale (n = 216), each simulated cell within 0.1
    // of its provider- and churn-aware model prediction.
    //
    // Global and delegate go through the scenario-level `predict` (the same
    // entry point the sweeps gate on).  The flat view (ℓ = 42, the delegate
    // table size) sits below the prediction module's paper-scale domain
    // floor, so that row exercises `DecentralizedModel` directly — the
    // fixed-sample percolation model itself, without the domain gate.
    let (arity, depth) = (6u32, 3usize);
    let n = (arity as usize).pow(depth as u32);
    let flat_entries = 42; // R·a·(d−1) + a for R = 3: the delegate bound.

    // The churn_sweep leave schedule: `rate·n` distinct leavers spread
    // evenly over the index space, unsubscribing at rounds 2..=6.
    let leavers = |rate: f64| -> Vec<(u64, usize)> {
        let count = (rate * n as f64).round() as usize;
        (0..count)
            .map(|i| (2 + (i % 5) as u64, (i * n) / count.max(1)))
            .collect()
    };
    let scenario_for = |membership: MembershipSpec, churn: f64| -> Scenario {
        let mut builder = Scenario::builder()
            .group(arity, depth)
            .matching_rate(0.5)
            .loss(0.01)
            .membership(membership)
            .publish(Publisher::Interested, Event::builder(1).int("b", 1).build())
            .trials(3)
            .seed(42);
        for (round, process) in leavers(churn) {
            builder = builder.leave_at(round, process);
        }
        builder.build()
    };
    let simulate = |scenario: &Scenario| -> f64 {
        let outcomes = scenario.run_parallel(Protocol::Pmcast);
        outcomes.iter().map(|o| o.report.delivery_ratio()).sum::<f64>() / outcomes.len() as f64
    };
    // The model-side churn profile for the same schedule: per-round departed
    // fractions, offsets relative to the round-0 publish.
    let churn_profile = |churn: f64| -> ChurnProfile {
        let mut per_round = std::collections::BTreeMap::new();
        for (round, _) in leavers(churn) {
            *per_round.entry(round as u32).or_insert(0.0) += 1.0 / n as f64;
        }
        ChurnProfile::from_departures(per_round)
    };

    const TOLERANCE: f64 = 0.1;
    for churn in [0.0, 0.10] {
        // Global and delegate: the scenario-level prediction is in-domain
        // and must track the simulation.
        for membership in [MembershipSpec::Global, MembershipSpec::delegate(3)] {
            let scenario = scenario_for(membership, churn);
            let prediction = predict(&scenario);
            assert!(
                prediction.in_domain,
                "{membership:?} at churn {churn} should be inside the model domain"
            );
            let simulated = simulate(&scenario);
            assert!(
                (simulated - prediction.reliability).abs() < TOLERANCE,
                "{membership:?} churn {churn}: simulated {simulated:.4} vs \
                 predicted {:.4}",
                prediction.reliability
            );
        }

        // Flat views: quick scale is outside `predict`'s trust region, so
        // compare against the percolation model directly.
        let scenario = scenario_for(MembershipSpec::partial(flat_entries), churn);
        assert!(!predict(&scenario).in_domain, "quick-scale flat views are out of domain");
        let simulated = simulate(&scenario);
        let group = GroupParams { arity, depth, redundancy: 3, fanout: 2 };
        let modeled = DecentralizedModel::new(
            group,
            scenario.protocol.env,
            ProviderShape::Partial { view_size: flat_entries },
        )
        .with_churn(churn_profile(churn))
        .predict(0.5);
        assert!(
            (simulated - modeled.reliability).abs() < TOLERANCE,
            "flat ℓ={flat_entries} churn {churn}: simulated {simulated:.4} vs \
             modeled {:.4}",
            modeled.reliability
        );
    }
}

#[test]
fn simulated_rounds_never_exceed_the_total_budget_by_much() {
    let config = ExperimentConfig::quick().with_trials(3).with_matching_rate(0.5);
    let model = TreeModel::new(
        GroupParams {
            arity: config.arity,
            depth: config.depth,
            redundancy: config.protocol.redundancy,
            fanout: config.protocol.fanout,
        },
        config.protocol.env,
    );
    let outcome = run_experiment(&config);
    let budget = model.total_rounds(0.5) as f64;
    // One extra round per depth for promotion plus one trailing round.
    let slack = config.depth as f64 + 2.0;
    assert!(
        outcome.rounds_mean <= budget + slack,
        "simulation took {} rounds, budget {budget}",
        outcome.rounds_mean
    );
}
