//! # pmcast — Probabilistic Multicast
//!
//! A Rust implementation of *Probabilistic Multicast* (Eugster & Guerraoui,
//! DSN 2002): a gossip-based algorithm that multicasts events to the subset
//! of a large process group that is actually interested in them, combining
//! the scalability of epidemic dissemination with content-based
//! publish/subscribe selectivity and a hierarchical membership whose
//! per-process views grow with `n^(1/d)` rather than `n`.
//!
//! This umbrella crate re-exports the public API of the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`addr`] | `pmcast-addr` | hierarchical addresses, prefixes, distances |
//! | [`interest`] | `pmcast-interest` | events, predicates, filters, interest regrouping |
//! | [`membership`] | `pmcast-membership` | group tree, delegates, views, anti-entropy, churn |
//! | [`simnet`] | `pmcast-simnet` | deterministic round-based network simulation |
//! | [`core`] | `pmcast-core` | the pmcast protocol and the baseline protocols |
//! | [`analysis`] | `pmcast-analysis` | Pittel asymptote, infection Markov chains, reliability model |
//! | [`sim`] | `pmcast-sim` | experiment harness and figure regenerators |
//!
//! The most commonly used items are also re-exported at the crate root.
//!
//! ## Quick start
//!
//! ```rust
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use std::sync::Arc;
//! use pmcast::{
//!     build_group, AddressSpace, AssignmentOracle, Event, ImplicitRegularTree,
//!     MulticastReport, NetworkConfig, PmcastConfig, ProcessId, Simulation,
//! };
//! use rand::SeedableRng;
//!
//! // 64 processes in a regular tree of depth 3.
//! let topology = ImplicitRegularTree::new(AddressSpace::regular(3, 4)?);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let oracle = Arc::new(AssignmentOracle::sample(&topology, 0.5, &mut rng));
//!
//! let group = build_group(&topology, oracle.clone(), &PmcastConfig::default());
//! let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(1));
//! let event = Event::builder(1).int("b", 7).build();
//! sim.process_mut(ProcessId(0)).pmcast(event.clone());
//! sim.run_until_quiescent(200);
//!
//! let report = MulticastReport::collect(&event, sim.processes(), oracle.as_ref());
//! assert!(report.delivery_ratio() > 0.8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Hierarchical addresses, prefixes and distances (`pmcast-addr`).
pub mod addr {
    pub use pmcast_addr::*;
}

/// Content-based subscription model (`pmcast-interest`).
pub mod interest {
    pub use pmcast_interest::*;
}

/// Tree-structured membership (`pmcast-membership`).
pub mod membership {
    pub use pmcast_membership::*;
}

/// Deterministic round-based network simulation (`pmcast-simnet`).
pub mod simnet {
    pub use pmcast_simnet::*;
}

/// The pmcast protocol and baselines (`pmcast-core`).
pub mod core {
    pub use pmcast_core::*;
}

/// Stochastic analysis (`pmcast-analysis`).
pub mod analysis {
    pub use pmcast_analysis::*;
}

/// Experiment harness and figure regenerators (`pmcast-sim`).
pub mod sim {
    pub use pmcast_sim::*;
}

pub use pmcast_addr::{AddrError, Address, AddressSpace, Prefix};
pub use pmcast_analysis::{EnvParams, GroupParams};
pub use pmcast_core::{
    build_flood_group, build_genuine_group, build_group, FloodBroadcastProcess,
    GenuineMulticastProcess, Gossip, MulticastReport, PmcastConfig, PmcastGroup, PmcastProcess,
    TuningConfig,
};
pub use pmcast_interest::{
    AttributeValue, Event, EventId, Filter, Interest, InterestSummary, Predicate,
};
pub use pmcast_membership::{
    AssignmentOracle, GroupTree, ImplicitRegularTree, InterestOracle, MembershipManager,
    SubscriptionOracle, TreeTopology, UniformOracle, ViewTable,
};
pub use pmcast_simnet::{NetworkConfig, ProcessId, Simulation, TrafficStats};
