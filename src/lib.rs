//! # pmcast — Probabilistic Multicast
//!
//! A Rust implementation of *Probabilistic Multicast* (Eugster & Guerraoui,
//! DSN 2002): a gossip-based algorithm that multicasts events to the subset
//! of a large process group that is actually interested in them, combining
//! the scalability of epidemic dissemination with content-based
//! publish/subscribe selectivity and a hierarchical membership whose
//! per-process views grow with `n^(1/d)` rather than `n`.
//!
//! This umbrella crate re-exports the public API of the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`addr`] | `pmcast-addr` | hierarchical addresses, prefixes, distances |
//! | [`interest`] | `pmcast-interest` | events, predicates, filters, interest regrouping |
//! | [`membership`] | `pmcast-membership` | group tree, delegates, views, anti-entropy, churn |
//! | [`simnet`] | `pmcast-simnet` | deterministic round-based network simulation |
//! | [`core`] | `pmcast-core` | the pmcast protocol and the baseline protocols |
//! | [`analysis`] | `pmcast-analysis` | Pittel asymptote, infection Markov chains, reliability model |
//! | [`sim`] | `pmcast-sim` | experiment harness and figure regenerators |
//! | [`net`] | `pmcast-net` | event-driven async runtime, conformance-tested against [`sim`] |
//!
//! The most commonly used items are also re-exported at the crate root.
//!
//! ## API architecture
//!
//! All three dissemination protocols — pmcast and the two baselines —
//! implement the [`MulticastProtocol`] trait and are built through a
//! [`ProtocolFactory`] ([`PmcastFactory`], [`FloodFactory`],
//! [`GenuineFactory`]) from the same `(topology, oracle, membership,
//! config)` quadruple.  Membership knowledge is a pluggable
//! [`MembershipView`]: [`GlobalOracleView`] gives every process the whole
//! group (the paper's evaluation model), [`PartialView`] bounds each
//! process to an lpbcast-style flat gossip-maintained partial view, and
//! [`DelegateView`] maintains the paper's Section 2 hierarchical view
//! tables (per-depth delegate slots that contain pmcast's tree delegates
//! by construction).  Workloads
//! are described declaratively with the [`Scenario`] builder — including a
//! [`MembershipSpec`] axis and `join_at` / `leave_at` lifecycle schedules
//! over a sparse [`Population`] — and executed by one generic trial loop
//! ([`sim::runner`]), so comparing protocols or adding workloads never
//! duplicates simulation code.
//!
//! Two lifecycle vocabularies coexist at this root, one per layer:
//! [`LifecycleEvent`] / [`LifecycleEventKind`] (from `pmcast-membership`)
//! describe a [`Population`]'s *scheduled membership events* — joins and
//! graceful leaves only, since crashes are a fault model, not membership —
//! while [`LifecycleTransition`] / [`LifecycleKind`] (from
//! `pmcast-simnet`) are the *applied engine transitions* the
//! [`Simulation`] reports to its lifecycle observer, which do include
//! `Crash`.  Schedules are written in the former; observers receive the
//! latter.
//!
//! ## Quick start
//!
//! ```rust
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use std::sync::Arc;
//! use pmcast::{
//!     AddressSpace, AssignmentOracle, Event, GlobalOracleView, ImplicitRegularTree,
//!     MulticastReport, NetworkConfig, PmcastConfig, PmcastFactory, ProcessId,
//!     ProtocolFactory, Simulation, TreeTopology,
//! };
//! use rand::SeedableRng;
//!
//! // 64 processes in a regular tree of depth 3.
//! let topology = ImplicitRegularTree::new(AddressSpace::regular(3, 4)?);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let oracle = Arc::new(AssignmentOracle::sample(&topology, 0.5, &mut rng));
//! let membership = Arc::new(GlobalOracleView::new(topology.member_count()));
//!
//! let group = PmcastFactory::build(&topology, oracle.clone(), membership, &PmcastConfig::default());
//! let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(1));
//! let event = Event::builder(1).int("b", 7).build();
//! sim.process_mut(ProcessId(0)).pmcast(event.clone());
//! sim.run_until_quiescent(200);
//!
//! let report = MulticastReport::collect(&event, sim.processes(), oracle.as_ref());
//! assert!(report.delivery_ratio() > 0.8);
//! # Ok(())
//! # }
//! ```
//!
//! Or declaratively, running the same workload on every protocol:
//!
//! ```rust
//! use pmcast::{Event, Protocol, Publisher, Scenario};
//!
//! let scenario = Scenario::builder()
//!     .group(4, 3)
//!     .matching_rate(0.5)
//!     .publish(Publisher::Interested, Event::builder(1).int("b", 7).build())
//!     .publish_at(2, Publisher::Uniform, Event::builder(2).int("b", 8).build())
//!     .seed(1)
//!     .build();
//! for protocol in [Protocol::Pmcast, Protocol::FloodBroadcast, Protocol::GenuineMulticast] {
//!     let outcome = &scenario.run(protocol)[0];
//!     assert_eq!(outcome.per_event.len(), 2);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Hierarchical addresses, prefixes and distances (`pmcast-addr`).
pub mod addr {
    pub use pmcast_addr::*;
}

/// Content-based subscription model (`pmcast-interest`).
pub mod interest {
    pub use pmcast_interest::*;
}

/// Tree-structured membership (`pmcast-membership`).
pub mod membership {
    pub use pmcast_membership::*;
}

/// Deterministic round-based network simulation (`pmcast-simnet`).
pub mod simnet {
    pub use pmcast_simnet::*;
}

/// The pmcast protocol and baselines (`pmcast-core`).
pub mod core {
    pub use pmcast_core::*;
}

/// Stochastic analysis (`pmcast-analysis`).
pub mod analysis {
    pub use pmcast_analysis::*;
}

/// Experiment harness and figure regenerators (`pmcast-sim`).
pub mod sim {
    pub use pmcast_sim::*;
}

/// Event-driven async runtime (`pmcast-net`): long-running broker tasks on
/// timers and transports, conformance-tested against the round-synchronous
/// simulator (which stays the oracle).
pub mod net {
    pub use pmcast_net::*;
}

pub use pmcast_addr::{AddrError, Address, AddressSpace, Prefix};
pub use pmcast_analysis::{EnvParams, GroupParams};
pub use pmcast_core::{
    FloodBroadcastProcess, FloodFactory, GenuineFactory, GenuineMulticastProcess, Gossip,
    InterestRouting, MulticastProtocol, MulticastReport, PmcastConfig, PmcastFactory, PmcastGroup,
    PmcastProcess, ProtocolFactory, ProtocolGroup, TuningConfig,
};
pub use pmcast_sim::prediction::{parse_check_model, predict, DriftGate, ModelPrediction};
pub use pmcast_sim::runner::{DeliveryLatency, ExperimentConfig, Protocol, TrialOutcome};
pub use pmcast_sim::scenario::{
    MembershipSpec, Publication, Publisher, Scenario, ScenarioBuilder, SubtreeLoss, TopicWorkload,
};
pub use pmcast_interest::{
    AttributeValue, Event, EventId, Filter, Interest, InterestSummary, InternStats, Interner,
    Predicate,
};
pub use pmcast_membership::{
    AssignmentOracle, DelegateView, DelegateViewConfig, GlobalOracleView, GroupTree,
    ImplicitRegularTree, InterestOracle, LazyDelegateView, LifecycleEvent, LifecycleEventKind,
    MembershipManager, MembershipView, PartialView, PartialViewConfig, Population,
    PopulationSizes, SubscriptionOracle, SubtreeSummaries, TopicOracle, TreeTopology,
    UniformOracle, ViewTable, TOPIC_ATTRIBUTE,
};
pub use pmcast_net::{NetConfig, NetGroup, NetGroupHandle, NetTrialOutcome, Seen};
pub use pmcast_simnet::{
    FaultPlan, LifecycleKind, LifecyclePlan, LifecycleTransition, LinkDelay, LossOverride,
    NetworkConfig, PartitionWindow, ProcessId, Simulation, Straggler, TrafficStats,
};
